"""Command-line interface: ``repro-asf``.

Subcommands::

    repro-asf list                       # Table III inventory
    repro-asf run vacation               # one benchmark, all systems
    repro-asf suite --txns 200           # every figure/table, printed
    repro-asf overhead --subblocks 4     # Section IV-E cost model
    repro-asf sweep vacation             # closed-loop sub-block sweep
    repro-asf sweep vacation --axis policy   # scheme × policy matrix
    repro-asf policies                   # the supported HTM policy matrix
    repro-asf ablate genome              # dirty-state + forced-WAW ablations
    repro-asf save-scripts ssca2 out.jsonl   # compile + serialize a program
    repro-asf replay out.jsonl           # simulate a serialized program
    repro-asf trace kmeans events.jsonl  # export a JSONL event trace
    repro-asf analyze events.jsonl       # conflict forensics from a trace
    repro-asf store ls DIR               # inspect a results store
    repro-asf store gc DIR --keep-last 8 # prune a results store
    repro-asf store merge DEST SRC...    # union per-host checkpoint dirs
    repro-asf worker --connect HOST:PORT # join a remote sweep as a worker

``--executor SPEC`` on ``run``/``suite``/``sweep``/``ablate`` picks the
execution backend: ``serial`` (in-process reference), ``process`` /
``process:N`` (local pool, N workers), ``remote`` / ``remote:PORT`` /
``remote:HOST:PORT`` / ``remote:HOSTS_FILE`` (TCP coordinator; workers
join via ``repro-asf worker``).  ``--jobs N`` remains as a deprecated
alias for ``process:N``.  See ``docs/DISTRIBUTED.md`` for the fabric.

``--trace-dir DIR`` on ``run``/``suite`` records every run's event
trace into DIR *and* writes a ``<run>.report.txt`` forensics report next
to each trace — record and analyze in one pass.

``--seeds N`` on ``run``/``suite`` repeats the experiment over seeds
1..N and reports every metric as mean ± sample stdev (``suite`` then
renders the error-bar editions of the headline figures).

``--checkpoint DIR`` on ``run``/``suite``/``sweep`` persists every
completed run to a :class:`~repro.store.ResultsStore` in DIR as it
finishes; re-invoking with ``--resume`` skips the runs already stored,
so an interrupted sweep picks up where it died.  A live ``[done/total]``
progress line (stderr, TTY only) is fed by the streaming executor.

``--policy {asf,eager,lazy}`` (plus ``--resolution`` / ``--arbitration``
overrides) selects the HTM policy point on every simulating subcommand;
``repro-asf policies`` prints the full matrix.  The default is the
paper's ASF machine.

The CLI is a thin veneer over the library; anything it prints is computed
by :mod:`repro.analysis`.
"""

from __future__ import annotations

import argparse
import os
import sys

from repro.analysis.experiments import run_seed_sweep, run_suite
from repro.analysis.report import render_all, render_seed_figures
from repro.analysis.sweeps import (
    ablation_dirty_state,
    ablation_forced_waw,
    sweep_policy_matrix,
    sweep_subblocks,
)
from repro.config import (
    KERNELS,
    POLICY_PRESETS,
    ConflictResolution,
    DetectionScheme,
    DetectionTiming,
    HtmPolicy,
    LazyArbitration,
    SystemConfig,
    VersionMgmt,
    default_system,
)
from repro.core.overhead import OverheadModel
from repro.sim.runner import compare_systems, compare_systems_seeds, run_scripts
from repro.telemetry import aggregate_metrics
from repro.trace.scriptio import load_scripts, save_scripts
from repro.util.tables import format_table, percent
from repro.workloads.registry import BENCHMARK_NAMES, get_workload, workload_table

__all__ = ["main"]

ALL_SCHEMES = (
    DetectionScheme.ASF_BASELINE,
    DetectionScheme.SUBBLOCK,
    DetectionScheme.PERFECT,
    DetectionScheme.DECOUPLED,
)


class _ProgressLine:
    """``\\r``-rewriting ``[done/total] label`` line on stderr.

    Fed as the ``on_result`` callback of the streaming executor, so it
    ticks the moment each run completes (completion order).  Inactive
    when stderr is not a TTY — piped output stays clean.
    """

    def __init__(self, total: int, enabled: bool | None = None) -> None:
        self.total = total
        self.done = 0
        self.enabled = sys.stderr.isatty() if enabled is None else enabled

    def __call__(self, index: int, result) -> None:
        self.done += 1
        if not self.enabled:
            return
        label = f"{result.workload}:{result.scheme}"
        sys.stderr.write(f"\r[{self.done}/{self.total}] {label:<40.40}")
        sys.stderr.flush()

    def finish(self) -> None:
        """Blank the line so real output starts at column 0."""
        if self.enabled and self.done:
            sys.stderr.write("\r" + " " * 52 + "\r")
            sys.stderr.flush()


def _executor_config(args: argparse.Namespace, store=None, on_result=None):
    """The :class:`~repro.sim.executors.ExecConfig` the CLI flags select.

    ``--executor SPEC`` wins; ``--jobs N`` (the deprecated alias) maps to
    ``process:N`` with a :class:`DeprecationWarning` when it deviates
    from the serial default.
    """
    import warnings

    from repro.sim.executors import as_exec_config, parse_executor_spec

    spec = getattr(args, "executor", None)
    jobs = getattr(args, "jobs", 1)
    if spec is not None:
        cfg = parse_executor_spec(spec)
    else:
        if jobs != 1:
            alias = f"process:{jobs}" if jobs > 0 else "process"
            warnings.warn(
                f"--jobs is deprecated; use --executor {alias}",
                DeprecationWarning,
                stacklevel=2,
            )
        cfg = as_exec_config(None, jobs=jobs)
    cfg.store = store
    cfg.on_result = on_result
    return cfg


def _open_store(args: argparse.Namespace):
    """A ResultsStore for ``--checkpoint DIR``, or None.

    Without ``--resume`` the directory is wiped first: the flags are
    "record this sweep" vs "continue that one", never a silent mix.
    """
    directory = getattr(args, "checkpoint", None)
    if not directory:
        return None
    from repro.store import ResultsStore

    return ResultsStore(directory, fresh=not args.resume)


def _analyze_trace_dir(trace_dir: str | None) -> None:
    """Forensics pass over every trace in a ``--trace-dir`` directory.

    Each ``<run>.jsonl`` gets a ``<run>.report.txt`` sibling; the pass
    prints one summary line so the figure output above stays primary.
    """
    if trace_dir is None:
        return
    import glob

    from repro.analysis.trace import analyze_trace

    traces = sorted(glob.glob(os.path.join(trace_dir, "*.jsonl")))
    for path in traces:
        report = analyze_trace(path)
        out = os.path.splitext(path)[0] + ".report.txt"
        with open(out, "w", encoding="utf-8") as fh:
            fh.write(report + "\n")
    if traces:
        print(
            f"\n[trace-dir] {len(traces)} traces recorded and analyzed in "
            f"{trace_dir} (one .report.txt per trace)"
        )


def _policy_from_args(args) -> HtmPolicy | None:
    """The HtmPolicy the CLI flags select, or None for the ASF default.

    ``--policy`` picks a preset; ``--resolution`` / ``--arbitration``
    override individual axes on top of it, so e.g.
    ``--policy lazy --arbitration polite`` is a valid matrix point.
    """
    name = getattr(args, "policy", None)
    resolution = getattr(args, "resolution", None)
    arbitration = getattr(args, "arbitration", None)
    if (name in (None, "asf")) and resolution is None and arbitration is None:
        return None
    policy = POLICY_PRESETS[name or "asf"]
    overrides = {}
    if resolution is not None:
        overrides["resolution"] = ConflictResolution(resolution)
    if arbitration is not None:
        overrides["lazy_arbitration"] = LazyArbitration(arbitration)
    if overrides:
        from dataclasses import replace

        policy = replace(policy, **overrides)
    return policy


def _apply_policy(cfg: SystemConfig, args) -> SystemConfig:
    policy = _policy_from_args(args)
    return cfg if policy is None else cfg.with_policy(policy)


def _base_config(args) -> SystemConfig:
    """``default_system()`` with the CLI's kernel + policy flags applied."""
    return _apply_policy(default_system().with_kernel(args.kernel), args)


def _result_rows(results, base):
    rows = []
    for name, res in results.items():
        s = res.stats
        rows.append(
            (
                name,
                s.txn_commits,
                s.conflicts.total,
                s.conflicts.total_false,
                percent(s.conflicts.false_rate),
                f"{s.avg_retries:.2f}",
                s.execution_cycles,
                percent(res.speedup_over(base)),
            )
        )
    return rows


_RESULT_HEADERS = (
    "system",
    "commits",
    "conflicts",
    "false",
    "false rate",
    "retries",
    "cycles",
    "improvement",
)


def _cmd_list(_args: argparse.Namespace) -> int:
    print(format_table(("benchmark", "description"), workload_table()))
    return 0


def _seed_list(args: argparse.Namespace) -> tuple[int, ...]:
    """Seeds for a ``--seeds N`` fan-out: N seeds starting at ``--seed``."""
    return tuple(range(args.seed, args.seed + args.seeds))


def _print_profile(pr) -> None:
    """Top-20 cumulative profile plus a machine/engine/telemetry split.

    The split buckets each function's *tottime* by the layer its file
    lives in, so "where do the cycles go" is answerable without reading
    the full table: ``sim/engine`` is the event loop, ``telemetry/`` the
    sink hooks, and ``kernel``/``htm``/``mem`` the simulated machine.
    """
    import pstats

    stats = pstats.Stats(pr)
    stats.sort_stats("cumulative")
    stats.print_stats(20)
    buckets = {"machine": 0.0, "engine": 0.0, "telemetry": 0.0, "other": 0.0}
    total = 0.0
    for (filename, _lineno, _name), (_cc, _nc, tt, _ct, _callers) in (
        stats.stats.items()  # type: ignore[attr-defined]
    ):
        total += tt
        norm = filename.replace("\\", "/")
        if "/sim/engine" in norm:
            buckets["engine"] += tt
        elif "/telemetry/" in norm:
            buckets["telemetry"] += tt
        elif "/kernel/" in norm or "/htm/" in norm or "/mem/" in norm:
            buckets["machine"] += tt
        else:
            buckets["other"] += tt
    print("phase split (tottime):")
    for name in ("machine", "engine", "telemetry", "other"):
        pct = 100.0 * buckets[name] / total if total else 0.0
        print(f"  {name:<9} {buckets[name]:8.3f}s  {pct:5.1f}%")


def _cmd_run(args: argparse.Namespace) -> int:
    if getattr(args, "profile", False):
        import cProfile

        pr = cProfile.Profile()
        pr.enable()
        try:
            rv = _cmd_run_inner(args)
        finally:
            pr.disable()
            _print_profile(pr)
        return rv
    return _cmd_run_inner(args)


def _cmd_run_inner(args: argparse.Namespace) -> int:
    workload = get_workload(args.benchmark, args.txns)
    schemes = ALL_SCHEMES if args.all_schemes else (
        DetectionScheme.ASF_BASELINE,
        DetectionScheme.SUBBLOCK,
        DetectionScheme.PERFECT,
    )
    store = _open_store(args)
    if args.seeds > 1:
        seeds = _seed_list(args)
        progress = _ProgressLine(len(schemes) * len(seeds))
        try:
            by_scheme = compare_systems_seeds(
                workload, seeds, n_subblocks=args.subblocks,
                config=_base_config(args),
                check_atomicity=args.check, schemes=schemes,
                executor=_executor_config(args, store=store,
                                          on_result=progress),
                trace_dir=args.trace_dir,
            )
        finally:
            progress.finish()
            if store is not None:
                store.close()
        rows = []
        for name, runs in by_scheme.items():
            m = aggregate_metrics(r.stats for r in runs)
            rows.append(
                (
                    name,
                    m["txn_commits"].format(precision=1),
                    m["conflicts_total"].format(precision=1),
                    m["false_rate"].format(precision=4),
                    m["avg_retries"].format(precision=3),
                    m["execution_cycles"].format(precision=0),
                )
            )
        print(
            format_table(
                ("system", "commits", "conflicts", "false rate", "retries",
                 "cycles"),
                rows,
                title=(
                    f"{args.benchmark} ({len(seeds)} seeds {seeds}, "
                    f"{args.txns} txns/core, mean ± stdev)"
                ),
            )
        )
        _analyze_trace_dir(args.trace_dir)
        return 0
    progress = _ProgressLine(len(schemes))
    try:
        results = compare_systems(
            workload, seed=args.seed, n_subblocks=args.subblocks,
            config=_base_config(args),
            check_atomicity=args.check, schemes=schemes,
            executor=_executor_config(args, store=store, on_result=progress),
            trace_dir=args.trace_dir,
        )
    finally:
        progress.finish()
        if store is not None:
            store.close()
    base = results["asf"]
    print(
        format_table(
            _RESULT_HEADERS,
            _result_rows(results, base),
            title=f"{args.benchmark} (seed {args.seed}, {args.txns} txns/core)",
        )
    )
    _analyze_trace_dir(args.trace_dir)
    return 0


def _cmd_suite(args: argparse.Namespace) -> int:
    store = _open_store(args)
    try:
        n_suite = len(BENCHMARK_NAMES) * 3
        progress = _ProgressLine(n_suite)
        suite = run_suite(
            txns_per_core=args.txns, seed=args.seed,
            config=_base_config(args),
            executor=_executor_config(args, store=store, on_result=progress),
            trace_dir=args.trace_dir,
        )
        progress.finish()
        out = render_all(suite)
        if args.seeds > 1:
            seeds = _seed_list(args)
            progress = _ProgressLine(n_suite * len(seeds))
            sweep = run_seed_sweep(
                txns_per_core=args.txns, seeds=seeds,
                config=_base_config(args),
                executor=_executor_config(args, store=store,
                                          on_result=progress),
            )
            progress.finish()
            out += "\n\n" + "=" * 72 + "\n\n" + render_seed_figures(sweep)
        print(out)
        _analyze_trace_dir(args.trace_dir)
    finally:
        if store is not None:
            store.close()
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.analysis.trace import TraceReader
    from repro.sim.runner import run_workload

    workload = get_workload(args.benchmark, args.txns)
    cfg = _apply_policy(
        default_system(DetectionScheme(args.scheme), args.subblocks)
        .with_kernel(args.kernel),
        args,
    ).with_telemetry(
        sink="trace", trace_path=args.path, trace_accesses=args.accesses,
    )
    res = run_workload(workload, cfg, seed=args.seed, check_atomicity=False)
    with TraceReader(args.path) as reader:
        n_events = sum(1 for _ in reader)
        header = reader.header
    print(
        f"wrote {args.path}: {n_events} events "
        f"(schema {header.schema} v{header.major}.{header.minor}, "
        f"{res.stats.txn_commits} commits, "
        f"{res.stats.conflicts.total} conflicts)"
    )
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    from repro.analysis.trace import (
        TRACE_FIGURES,
        ConflictTimeline,
        analyze_trace,
    )

    chosen = args.fig or ["all"]
    figs = TRACE_FIGURES if "all" in chosen else tuple(dict.fromkeys(chosen))
    report = analyze_trace(
        args.path, figs=figs, bins=args.bins, top=args.top,
        n_subblocks=args.subblocks, cascade_window=args.cascade_window,
    )
    if args.out is None:
        print(report)
        return 0
    os.makedirs(args.out, exist_ok=True)
    report_path = os.path.join(args.out, "report.txt")
    with open(report_path, "w", encoding="utf-8") as fh:
        fh.write(report + "\n")
    written = [report_path]
    timeline = ConflictTimeline.from_trace(args.path)
    tsvs = {}
    if "3" in figs:
        hist = timeline.conflict_lifetime_histogram(bins=args.bins)
        tsvs["fig3.tsv"] = [("lifetime_bin", "false_conflicts")] + [
            (f"{k / args.bins:.2f}", n) for k, n in enumerate(hist)
        ]
    if "4" in figs:
        tsvs["fig4.tsv"] = [("line_index", "line_addr", "false_conflicts")] + [
            (index, f"{addr:#x}", n)
            for index, addr, n in timeline.line_ranking()
        ]
    if "5" in figs:
        tsvs["fig5.tsv"] = [
            ("byte_offset", "false_conflicts")
        ] + timeline.conflict_offset_histogram()
    for name, rows in tsvs.items():
        path = os.path.join(args.out, name)
        with open(path, "w", encoding="utf-8") as fh:
            for row in rows:
                fh.write("\t".join(str(c) for c in row) + "\n")
        written.append(path)
    print(f"wrote {', '.join(written)}")
    return 0


def _cmd_store(args: argparse.Namespace) -> int:
    from repro.store import ResultsStore

    with ResultsStore(args.dir, fresh=False) as store:
        if args.store_command == "ls":
            entries = store.entries()
            rows = [
                (e.label or e.key[:12], e.workload, e.scheme, e.seed,
                 e.commits, e.execution_cycles, e.key[:12])
                for e in entries
            ]
            print(
                format_table(
                    ("label", "workload", "scheme", "seed", "commits",
                     "cycles", "key"),
                    rows,
                    title=f"{args.dir}: {len(entries)} stored runs",
                )
            )
            return 0
        # gc: drop entries matching the filters, then trim to the newest N.
        predicate = None
        if args.workload or args.scheme:
            def predicate(entry, _w=args.workload, _s=args.scheme):
                drops = (not _w or entry.workload == _w) and (
                    not _s or entry.scheme == _s
                )
                return not drops
        removed = store.prune(keep=args.keep_last, predicate=predicate)
        print(f"{args.dir}: removed {removed}, kept {len(store)}")
    return 0


def _cmd_store_merge(args: argparse.Namespace) -> int:
    from repro.store import ResultsStore

    with ResultsStore(args.dest, fresh=False) as store:
        report = store.merge(args.sources)
        print(f"{args.dest}: {report.format()}")
        print(f"{args.dest}: {len(store)} total entries")
    return 1 if report.conflicts else 0


def _cmd_worker(args: argparse.Namespace) -> int:
    from repro.sim.remote import worker_main

    return worker_main(
        args.connect,
        worker_id=args.id,
        token=args.token,
        max_batches=args.max_batches,
    )


def _cmd_overhead(args: argparse.Namespace) -> int:
    cfg = SystemConfig()
    model = OverheadModel(l1=cfg.l1, n_subblocks=args.subblocks)
    print(model.describe())
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    workload = get_workload(args.benchmark, args.txns)
    if args.axis == "policy":
        return _cmd_sweep_policy(args, workload)
    counts = tuple(int(c) for c in args.counts.split(","))
    store = _open_store(args)
    progress = _ProgressLine(len(counts))
    try:
        points = sweep_subblocks(
            workload, counts=counts, seed=args.seed,
            config=_base_config(args),
            executor=_executor_config(args, store=store, on_result=progress),
        )
    finally:
        progress.finish()
        if store is not None:
            store.close()
    baseline = points[0]
    rows = [
        (
            p.label,
            p.stats.conflicts.total,
            p.stats.conflicts.total_false,
            percent(p.result.false_reduction_over(baseline.result)),
            percent(p.result.speedup_over(baseline.result)),
        )
        for p in points
    ]
    print(
        format_table(
            ("config", "conflicts", "false", "false reduction", "improvement"),
            rows,
            title=f"Closed-loop sub-block sweep: {args.benchmark} "
            f"(vs {baseline.label})",
        )
    )
    return 0


def _cmd_sweep_policy(args: argparse.Namespace, workload) -> int:
    """Scheme × policy grid: the design-space explorer's head-to-head view."""
    schemes = (
        DetectionScheme.ASF_BASELINE,
        DetectionScheme.SUBBLOCK,
    )
    policies = dict(POLICY_PRESETS)
    policies["stall"] = HtmPolicy(resolution=ConflictResolution.STALL_BACKOFF)
    store = _open_store(args)
    progress = _ProgressLine(len(schemes) * len(policies))
    try:
        points = sweep_policy_matrix(
            workload, schemes=schemes, policies=policies, seed=args.seed,
            config=default_system().with_kernel(args.kernel),
            executor=_executor_config(args, store=store, on_result=progress),
        )
    finally:
        progress.finish()
        if store is not None:
            store.close()
    by_label = {p.label: p for p in points}
    rows = []
    for scheme in schemes:
        for name, policy in policies.items():
            p = by_label[f"{scheme.value}×{name}"]
            rows.append(
                (
                    scheme.value,
                    name,
                    policy.describe(),
                    p.stats.txn_commits,
                    p.stats.conflicts.total,
                    percent(p.stats.conflicts.false_rate),
                    p.stats.stalls + p.stats.stall_aborts,
                    p.stats.execution_cycles,
                )
            )
    print(
        format_table(
            ("scheme", "policy", "point", "commits", "conflicts",
             "false rate", "stalls", "cycles"),
            rows,
            title=f"Scheme × policy matrix: {args.benchmark} "
            f"(seed {args.seed}, {args.txns} txns/core)",
        )
    )
    return 0


def _cmd_policies(_args: argparse.Namespace) -> int:
    """Print the supported policy matrix and mark the paper's ASF point."""
    preset_by_point = {
        (p.version_mgmt, p.conflict_detection, p.resolution): name
        for name, p in POLICY_PRESETS.items()
    }
    rows = []
    for vm in VersionMgmt:
        for cd in DetectionTiming:
            if vm is VersionMgmt.EAGER and cd is DetectionTiming.LAZY:
                continue  # invalid: in-place stores cannot defer detection
            for res in ConflictResolution:
                preset = preset_by_point.get((vm, cd, res), "")
                notes = []
                if preset:
                    notes.append(f"--policy {preset}")
                if preset == "asf":
                    notes.append("the paper's ASF machine")
                if cd is DetectionTiming.LAZY:
                    notes.append("--arbitration committer_wins|polite")
                rows.append(
                    (vm.value, cd.value, res.value, preset, "; ".join(notes))
                )
    print(
        format_table(
            ("version mgmt", "detection", "resolution", "preset", "notes"),
            rows,
            title="Supported HTM policy matrix (version management × "
            "conflict detection × resolution)",
        )
    )
    print(
        "\nEager version management + lazy detection is rejected: stores\n"
        "published in place need eager probes to stay correct.  The paper's\n"
        "ASF machine is the lazy-vm/eager-cd/requester_wins point (`--policy\n"
        "asf`, the default).  Stall/backoff parks the requester for a bounded\n"
        "number of turns before the deadlock-avoidance fallback abort;\n"
        "lazy-detection commits arbitrate committer-wins (or `polite`, where\n"
        "the committer publishes without aborting anyone and doomed readers\n"
        "fail their own commit-time validation)."
    )
    return 0


def _cmd_ablate(args: argparse.Namespace) -> int:
    workload = get_workload(args.benchmark, args.txns)
    cfg = _base_config(args)
    executor = _executor_config(args)
    on, off = ablation_dirty_state(
        workload, seed=args.seed, config=cfg, executor=executor
    )
    with_rule, without = ablation_forced_waw(
        workload, seed=args.seed, config=cfg, executor=executor
    )
    print(
        format_table(
            ("variant", "commits", "conflicts", "cycles", "violations"),
            [
                (p.label, p.stats.txn_commits, p.stats.conflicts.total,
                 p.stats.execution_cycles, p.violations)
                for p in (on, off, with_rule, without)
            ],
            title=f"Design-choice ablations: {args.benchmark}",
        )
    )
    if off.violations:
        print(
            f"\nNote: 'dirty off' produced {off.violations} atomicity "
            "violations — it is broken hardware, shown for the ablation only."
        )
    return 0


def _cmd_save_scripts(args: argparse.Namespace) -> int:
    workload = get_workload(args.benchmark, args.txns)
    scripts = workload.build(args.cores, args.seed)
    save_scripts(
        scripts, args.path,
        metadata={"benchmark": args.benchmark, "seed": args.seed,
                  "txns_per_core": args.txns},
    )
    print(f"wrote {args.path} ({sum(cs.n_txns for cs in scripts)} transactions)")
    return 0


def _cmd_replay(args: argparse.Namespace) -> int:
    scripts = load_scripts(args.path)
    results = {}
    for scheme in ALL_SCHEMES if args.all_schemes else (
        DetectionScheme.ASF_BASELINE, DetectionScheme.SUBBLOCK,
        DetectionScheme.PERFECT,
    ):
        cfg = _apply_policy(
            default_system(scheme, args.subblocks).with_kernel(args.kernel),
            args,
        )
        results[scheme.value] = run_scripts(
            scripts, cfg, args.seed, workload_name=args.path,
            check_atomicity=args.check,
        )
    base = results["asf"]
    print(
        format_table(
            _RESULT_HEADERS,
            _result_rows(results, base),
            title=f"replay of {args.path}",
        )
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-asf",
        description=(
            "ASF-style HTM simulator with speculative sub-blocking conflict "
            "detection (IPDPSW 2013 reproduction)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_list = sub.add_parser("list", help="list the Table III benchmarks")
    p_list.set_defaults(func=_cmd_list)

    def policy_flags(p):
        p.add_argument(
            "--policy", choices=sorted(POLICY_PRESETS), default="asf",
            help="HTM policy preset: the paper's ASF point (default), "
            "eager/eager LogTM-style, or lazy/lazy TCC-style "
            "(see `repro-asf policies`)",
        )
        p.add_argument(
            "--resolution",
            choices=[r.value for r in ConflictResolution], default=None,
            help="override the conflict-resolution axis of --policy",
        )
        p.add_argument(
            "--arbitration",
            choices=[a.value for a in LazyArbitration], default=None,
            help="override the lazy-commit arbitration axis of --policy "
            "(lazy detection only)",
        )

    def common(p, bench=True, seeds=False, checkpoint=False, trace_dir=False):
        if bench:
            p.add_argument("benchmark", choices=BENCHMARK_NAMES)
        p.add_argument("--txns", type=int, default=200)
        p.add_argument("--seed", type=int, default=1)
        p.add_argument(
            "--kernel", choices=KERNELS, default="flat",
            help="machine kernel implementation: the flat-txn default, the "
            "flat-array kernel, or the reference object model "
            "(bit-identical results)",
        )
        policy_flags(p)
        p.add_argument(
            "--executor", metavar="SPEC", default=None,
            help="execution backend: 'serial' (in-process reference), "
            "'process' (pool, all cores), 'process:N' (pool, N workers), "
            "'remote' (coordinator on an ephemeral loopback port), "
            "'remote:PORT' (bound to 0.0.0.0:PORT), 'remote:HOST:PORT', or "
            "'remote:HOSTS_FILE' (bind/launch lines; see docs/DISTRIBUTED.md)"
            "; every backend is bit-identical to serial",
        )
        p.add_argument(
            "--jobs", "-j", type=int, default=1,
            help="deprecated alias for --executor process:N "
            "(1 = serial, 0 = all cores)",
        )
        if seeds:
            p.add_argument(
                "--seeds", type=int, default=1,
                help="repeat over N seeds (starting at --seed) and report "
                "each metric as mean ± stdev",
            )
        if checkpoint:
            p.add_argument(
                "--checkpoint", metavar="DIR", default=None,
                help="persist each completed run to a results store in DIR "
                "as it finishes",
            )
            p.add_argument(
                "--resume", action="store_true",
                help="with --checkpoint: keep DIR's prior contents and skip "
                "runs already stored (default: start DIR fresh)",
            )
        if trace_dir:
            p.add_argument(
                "--trace-dir", metavar="DIR", default=None,
                help="record every run's JSONL event trace into DIR and "
                "write a forensics .report.txt next to each trace",
            )

    p_run = sub.add_parser("run", help="run one benchmark on all systems")
    common(p_run, seeds=True, checkpoint=True, trace_dir=True)
    p_run.add_argument("--subblocks", type=int, default=4)
    p_run.add_argument("--check", action="store_true",
                       help="enable the atomicity checker")
    p_run.add_argument("--all-schemes", action="store_true",
                       help="include the coherence-decoupling comparator")
    p_run.add_argument(
        "--profile", action="store_true",
        help="wrap the run in cProfile: print the top-20 cumulative "
        "functions and a machine/engine/telemetry phase split (use "
        "--jobs 1; subprocess work is invisible to the profiler)",
    )
    p_run.set_defaults(func=_cmd_run)

    p_suite = sub.add_parser("suite", help="regenerate every table and figure")
    common(p_suite, bench=False, seeds=True, checkpoint=True, trace_dir=True)
    p_suite.set_defaults(func=_cmd_suite)

    p_trace = sub.add_parser(
        "trace", help="run one benchmark and export a JSONL event trace"
    )
    common(p_trace)
    p_trace.add_argument("path", help="output .jsonl file")
    p_trace.add_argument("--scheme", default="subblock",
                         choices=[s.value for s in ALL_SCHEMES])
    p_trace.add_argument("--subblocks", type=int, default=4)
    p_trace.add_argument("--accesses", action="store_true",
                         help="also trace per-access events (large)")
    p_trace.set_defaults(func=_cmd_trace)

    p_analyze = sub.add_parser(
        "analyze", help="conflict forensics from a recorded event trace"
    )
    p_analyze.add_argument("path", help="input .jsonl trace file")
    p_analyze.add_argument(
        "--fig", action="append", choices=["3", "4", "5", "all"],
        default=None,
        help="figure(s) to regenerate from the trace (repeatable; "
        "default: all)",
    )
    p_analyze.add_argument(
        "--out", metavar="DIR", default=None,
        help="write report.txt plus per-figure .tsv data into DIR instead "
        "of printing",
    )
    p_analyze.add_argument("--bins", type=int, default=10,
                           help="lifetime-histogram bins (Fig. 3)")
    p_analyze.add_argument("--top", type=int, default=8,
                           help="rows in the ranking tables")
    p_analyze.add_argument("--subblocks", type=int, default=4,
                           help="sub-block grain for the Fig. 5 histogram")
    p_analyze.add_argument("--cascade-window", type=int, default=5000,
                           help="abort-cascade linking window (cycles)")
    p_analyze.set_defaults(func=_cmd_analyze)

    p_store = sub.add_parser("store", help="inspect / prune a results store")
    store_sub = p_store.add_subparsers(dest="store_command", required=True)
    p_store_ls = store_sub.add_parser("ls", help="list stored runs")
    p_store_ls.add_argument("dir", help="results-store directory")
    p_store_ls.set_defaults(func=_cmd_store)
    p_store_gc = store_sub.add_parser(
        "gc", help="drop stored runs and compact the log"
    )
    p_store_gc.add_argument("dir", help="results-store directory")
    p_store_gc.add_argument(
        "--keep-last", type=int, default=None, metavar="N",
        help="keep only the N most recently recorded surviving runs",
    )
    p_store_gc.add_argument("--workload", default=None,
                            help="drop runs of this workload")
    p_store_gc.add_argument("--scheme", default=None,
                            help="drop runs of this scheme")
    p_store_gc.set_defaults(func=_cmd_store)
    p_store_merge = store_sub.add_parser(
        "merge",
        help="union other checkpoint dirs into DEST (idempotent: "
        "content-hashed keys dedup re-runs; divergent payloads are "
        "reported and overwritten last-writer-wins)",
    )
    p_store_merge.add_argument("dest", help="destination store directory "
                               "(created if missing)")
    p_store_merge.add_argument("sources", nargs="+",
                               help="store directories (or results.jsonl "
                               "files) to merge in, in order")
    p_store_merge.set_defaults(func=_cmd_store_merge)

    p_worker = sub.add_parser(
        "worker",
        help="join a remote sweep: connect to a coordinator, execute "
        "batches until told to stop (see docs/DISTRIBUTED.md)",
    )
    p_worker.add_argument(
        "--connect", required=True, metavar="HOST:PORT",
        help="coordinator address (printed by the remote executor)",
    )
    p_worker.add_argument(
        "--id", default=None,
        help="worker identity for provenance stamping (default: host:pid)",
    )
    p_worker.add_argument(
        "--token", default="",
        help="shared secret echoed in the hello (must match the "
        "coordinator's --token / hosts-file token)",
    )
    p_worker.add_argument(
        "--max-batches", type=int, default=None, metavar="N",
        help="exit after N batches (drain-style launchers and tests)",
    )
    p_worker.set_defaults(func=_cmd_worker)

    p_ovh = sub.add_parser("overhead", help="Section IV-E hardware cost model")
    p_ovh.add_argument("--subblocks", type=int, default=4)
    p_ovh.set_defaults(func=_cmd_overhead)

    p_sweep = sub.add_parser(
        "sweep", help="closed-loop sub-block or policy-matrix sweep"
    )
    common(p_sweep, checkpoint=True)
    p_sweep.add_argument("--counts", default="1,2,4,8,16")
    p_sweep.add_argument(
        "--axis", choices=("subblocks", "policy"), default="subblocks",
        help="sweep axis: sub-block count (default) or the scheme × "
        "policy matrix",
    )
    p_sweep.set_defaults(func=_cmd_sweep)

    p_pol = sub.add_parser(
        "policies", help="print the supported HTM policy matrix"
    )
    p_pol.set_defaults(func=_cmd_policies)

    p_abl = sub.add_parser("ablate", help="dirty-state / forced-WAW ablations")
    common(p_abl)
    p_abl.set_defaults(func=_cmd_ablate)

    p_save = sub.add_parser("save-scripts", help="compile + serialize a program")
    common(p_save)
    p_save.add_argument("path")
    p_save.add_argument("--cores", type=int, default=8)
    p_save.set_defaults(func=_cmd_save_scripts)

    p_replay = sub.add_parser("replay", help="simulate a serialized program")
    p_replay.add_argument("path")
    p_replay.add_argument("--seed", type=int, default=1)
    p_replay.add_argument(
        "--kernel", choices=KERNELS, default="array",
        help="machine kernel implementation: the flat-array default or "
        "the reference object model (bit-identical results)",
    )
    p_replay.add_argument("--subblocks", type=int, default=4)
    p_replay.add_argument("--check", action="store_true")
    p_replay.add_argument("--all-schemes", action="store_true")
    policy_flags(p_replay)
    p_replay.set_defaults(func=_cmd_replay)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:
        # Output was piped to a consumer that closed early (e.g. `head`).
        # Redirect stdout to devnull so the interpreter's shutdown flush
        # does not raise again, and exit cleanly.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
