"""Exponential backoff for transaction retries.

The paper's methodology section: *"In order to avoid live locks, we also
introduced a simple exponential backoff manager in the software library,
which exponentially increases the backoff time according to transaction
retry times."*  This module is that manager: ``base * 2^(retries-1)``
cycles, capped, with seeded jitter so symmetric cores do not retry in
lock-step.
"""

from __future__ import annotations

from repro.config import HtmConfig
from repro.util.rng import DeterministicRng

__all__ = ["BackoffManager"]


class BackoffManager:
    """Computes per-retry backoff delays for one core."""

    __slots__ = ("base", "cap", "jitter", "_rng")

    def __init__(self, htm: HtmConfig, rng: DeterministicRng) -> None:
        self.base = htm.backoff_base_cycles
        self.cap = htm.backoff_cap_cycles
        self.jitter = htm.backoff_jitter
        self._rng = rng

    def delay(self, retries: int) -> int:
        """Backoff in cycles before attempt number ``retries + 1``.

        ``retries`` counts completed failed attempts (>= 1 when called).
        The deterministic jitter draws from the manager's own RNG stream,
        so delays are reproducible for a fixed seed.
        """
        if retries <= 0:
            return 0
        raw = self.base << min(retries - 1, 30)
        raw = min(raw, self.cap)
        if self.jitter > 0.0:
            lo = 1.0 - self.jitter
            raw = int(raw * (lo + self._rng.random() * self.jitter * 2))
            raw = min(max(raw, 1), self.cap * 2)
        return raw
