"""Lazy-conflict-detection policy wrapper for any detector.

Under ``DetectionTiming.LAZY`` coherence traffic still flows (stores
invalidate, loads demote) but probes never abort anyone: conflicts are
deferred to commit, where the committer value-validates its read set and
— under committer-wins arbitration — kills overlapping running
transactions at the wrapped scheme's detection granularity.

:class:`LazyPolicyDetector` implements that by wrapping the configured
scheme detector: footprint recording and commit arbitration delegate to
the scheme (so scheme × policy grids stay meaningful), while every
access-time hazard hook is neutralised:

* ``check_probe`` never conflicts — probed transactions survive;
* ``retains_on_invalidate`` keeps all speculative state, so a victim of
  a coherence invalidation still validates and arbitrates correctly;
* ``data_stale``/``rr_hit``/``dirty_hit`` are off — the Dirty/rr
  machinery exists to make *eager* probe detection sound, which lazy
  commits do not need;
* ``piggyback_mask`` is 0 — no speculative forwarding metadata travels;
* ``abstains_from_supply`` is true for any speculatively written line:
  its cached words are uncommitted tokens that must never be forwarded
  (backing memory, always committed-clean, responds instead);
* ``requires_commit_validation`` is True, switching every kernel's
  commit path onto the value-validation branch.
"""

from __future__ import annotations

from repro.htm.detector import ConflictDetector, ProbeCheck
from repro.htm.specstate import SpecLineState

__all__ = ["LazyPolicyDetector"]

_NO_CONFLICT = ProbeCheck(conflict=False)


class LazyPolicyDetector(ConflictDetector):
    """Defer a wrapped scheme's conflict detection to commit time."""

    requires_commit_validation = True

    def __init__(self, inner: ConflictDetector) -> None:
        self.inner = inner
        self.name = f"lazy({inner.name})"

    # -- footprint recording delegates to the scheme ------------------------

    def _record_read_bits(self, st: SpecLineState, mask: int) -> None:
        self.inner._record_read_bits(st, mask)

    def _record_write_bits(self, st: SpecLineState, mask: int) -> None:
        self.inner._record_write_bits(st, mask)

    # -- access-time hazards are neutralised --------------------------------

    def check_probe(
        self, st: SpecLineState, probe_mask: int, invalidating: bool
    ) -> ProbeCheck:
        return _NO_CONFLICT

    def retains_on_invalidate(self, st: SpecLineState) -> bool:
        return st.any_spec

    def abstains_from_supply(self, st: SpecLineState) -> bool:
        return st.any_dirty or self.inner.has_spec_write(st)

    # -- commit-time arbitration runs at the scheme's granularity -----------

    def arbitrate(self, st: SpecLineState, write_mask: int) -> ProbeCheck:
        return self.inner.check_probe(st, write_mask, True)

    # -- lifecycle delegates -------------------------------------------------

    def clear_spec(self, st: SpecLineState) -> bool:
        return self.inner.clear_spec(st)

    def has_spec_write(self, st: SpecLineState) -> bool:
        return self.inner.has_spec_write(st)
