"""Transaction lifecycle and runtime state.

A :class:`Transaction` is one *attempt* at executing a transaction
descriptor.  It carries the speculative runtime sets ASF keeps in hardware
(read/write line sets, the redo log buffered in L1/LSQ) plus the
bookkeeping the checker and statistics need (observed read tokens,
start/end cycles, abort cause).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import ProtocolError
from repro.htm.ops import TxnOp

__all__ = ["AbortCause", "Transaction", "TxnStatus"]


class TxnStatus(enum.Enum):
    RUNNING = "running"
    COMMITTED = "committed"
    ABORTED = "aborted"


class AbortCause(enum.Enum):
    """Why an attempt aborted — the paper's Figure 9 discussion separates
    contention aborts from labyrinth's user aborts."""

    CONFLICT_TRUE = "conflict_true"
    CONFLICT_FALSE = "conflict_false"
    CAPACITY = "capacity"
    USER = "user"
    VALIDATION = "validation"  # lazy schemes: read set stale at commit


@dataclass(slots=True)
class Transaction:
    """One attempt at a transaction.

    ``uid`` is globally unique per attempt; ``static_id`` identifies the
    program transaction so retries can be correlated.
    """

    uid: int
    static_id: int
    core: int
    ops: tuple[TxnOp, ...]
    attempt: int
    start_time: int
    status: TxnStatus = TxnStatus.RUNNING
    end_time: int = -1
    abort_cause: AbortCause | None = None
    user_abort: bool = False

    # Speculative line sets (line_addr keys).
    read_lines: set[int] = field(default_factory=set)
    write_lines: set[int] = field(default_factory=set)

    # Lazy-versioning redo log: word_addr -> token written (last wins).
    redo: dict[int, int] = field(default_factory=dict)

    # Eager-versioning undo log: word_addr -> pre-transaction token
    # (first touch only); empty under lazy version management.
    undo: dict[int, int] = field(default_factory=dict)

    # First-read observations for the serializability checker:
    # word_addr -> token observed (only the first read of each word, and
    # only when the word was not already in the redo log).
    observed: dict[int, int] = field(default_factory=dict)

    # Progress pointer into ``ops`` (engine resumes here between events).
    pc: int = 0

    @property
    def running(self) -> bool:
        return self.status is TxnStatus.RUNNING

    @property
    def footprint_lines(self) -> set[int]:
        return self.read_lines | self.write_lines

    def note_read(self, line_addr: int) -> None:
        self.read_lines.add(line_addr)

    def note_write(self, line_addr: int) -> None:
        self.write_lines.add(line_addr)

    def record_store(self, word_addr: int, token: int) -> None:
        if not self.running:
            raise ProtocolError(f"store in {self.status.value} txn {self.uid}")
        self.redo[word_addr] = token

    def forwarded_value(self, word_addr: int) -> int | None:
        """Store-to-load forwarding from the redo log (None = not written)."""
        return self.redo.get(word_addr)

    def observe_read(self, word_addr: int, token: int) -> None:
        """Record the first observed token per word for the checker."""
        if word_addr not in self.observed and word_addr not in self.redo:
            self.observed[word_addr] = token

    def reset(
        self,
        uid: int,
        static_id: int,
        ops: tuple[TxnOp, ...],
        attempt: int,
        start_time: int,
    ) -> None:
        """Recycle this object as a fresh attempt (flat-runtime views).

        The flat transactional runtime keeps one ``Transaction`` per core
        whose container fields alias the :class:`~repro.kernel.state.SimState`
        txn planes; instead of allocating a new attempt it clears those
        containers in place.  Safe because nothing retains a reference to
        the containers past commit/abort — the checker copies what it
        needs at commit time, telemetry and the engine read scalars only.
        """
        self.uid = uid
        self.static_id = static_id
        self.ops = ops
        self.attempt = attempt
        self.start_time = start_time
        self.status = TxnStatus.RUNNING
        self.end_time = -1
        self.abort_cause = None
        self.user_abort = False
        self.pc = 0
        self.read_lines.clear()
        self.write_lines.clear()
        self.redo.clear()
        self.undo.clear()
        self.observed.clear()

    def mark_committed(self, time: int) -> None:
        if not self.running:
            raise ProtocolError(f"commit of {self.status.value} txn {self.uid}")
        self.status = TxnStatus.COMMITTED
        self.end_time = time

    def mark_aborted(self, time: int, cause: AbortCause) -> None:
        if not self.running:
            raise ProtocolError(f"abort of {self.status.value} txn {self.uid}")
        self.status = TxnStatus.ABORTED
        self.end_time = time
        self.abort_cause = cause

    @property
    def wasted_cycles(self) -> int:
        """Cycles of discarded work for an aborted attempt."""
        if self.status is not TxnStatus.ABORTED or self.end_time < 0:
            return 0
        return self.end_time - self.start_time
