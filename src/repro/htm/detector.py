"""Conflict-detector interface and the baseline ASF detector.

A detector is the policy plug-in of :class:`repro.htm.machine.HtmMachine`:
it decides which probe/speculative-state combinations constitute a
transactional conflict, and it owns the sub-line bookkeeping (dirty bits,
piggy-back masks) its scheme needs.  Detectors are stateless across lines —
all mutable state lives in :class:`repro.htm.specstate.SpecLineState` — so
one instance serves a whole machine.

The baseline here implements AMD ASF's rules (paper Section IV-A):

* speculative accesses set per-line SR (read) / SW (write) bits;
* an invalidating probe (remote store) conflicts with SR **or** SW;
* a non-invalidating probe (remote load) conflicts with SW only;
* conflicts are resolved requester-wins (the probed transaction aborts).

The paper's sub-blocking detector and the perfect detector live in
:mod:`repro.core`; :func:`make_detector` builds whichever the config asks
for.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import NamedTuple

from repro.config import DetectionScheme, SystemConfig
from repro.htm.specstate import SpecLineState

__all__ = ["AsfBaselineDetector", "ConflictDetector", "ProbeCheck", "make_detector"]


class ProbeCheck(NamedTuple):
    """Outcome of checking one probe against one line's speculative state."""

    conflict: bool
    forced_waw: bool = False


class ConflictDetector(ABC):
    """Policy interface for conflict detection granularity."""

    #: short scheme identifier used in reports
    name: str = "abstract"

    #: whether the machine must value-validate the read set at commit
    #: (lazy schemes like coherence decoupling); eager schemes leave it
    #: False and commit unconditionally
    requires_commit_validation: bool = False

    # -- speculative footprint recording ------------------------------------

    def record_read(self, st: SpecLineState, mask: int) -> None:
        """Record a transactional load's byte mask against line state."""
        st.read_mask |= mask
        self._record_read_bits(st, mask)

    def record_write(self, st: SpecLineState, mask: int) -> None:
        """Record a transactional store's byte mask against line state."""
        st.write_mask |= mask
        self._record_write_bits(st, mask)

    @abstractmethod
    def _record_read_bits(self, st: SpecLineState, mask: int) -> None: ...

    @abstractmethod
    def _record_write_bits(self, st: SpecLineState, mask: int) -> None: ...

    # -- probe checking ------------------------------------------------------

    @abstractmethod
    def check_probe(
        self, st: SpecLineState, probe_mask: int, invalidating: bool
    ) -> ProbeCheck:
        """Does this probe conflict with the line's speculative state?"""

    # -- dirty-state machinery (no-ops outside the sub-blocking scheme) ------

    def dirty_hit(self, st: SpecLineState, mask: int) -> bool:
        """Would this local access touch a Dirty sub-block (forcing a
        re-probe, Section IV-C)?"""
        return False

    def data_stale(self, st: SpecLineState, mask: int, is_write: bool) -> bool:
        """Is the locally cached data unreliable for this access?

        True forces the miss path (probe + refetch).  Baseline ASF never
        forwards speculative data, so its copies are always reliable; the
        sub-blocking scheme overrides for Dirty-marked sub-blocks.
        """
        return False

    def rr_hit(self, st: SpecLineState, mask: int) -> bool:
        """Does this store target a sub-block a remote transaction holds
        retained speculative state on?

        True forces a probe even on a silently writable (M/E) line — the
        local data stays (it is authoritative); only the conflict check is
        needed.  See ``SpecLineState.rr_bits``.
        """
        return False

    def piggyback_mask(self, st: SpecLineState) -> int:
        """Responder-side piggy-back bits: speculatively written sub-blocks
        to be carried on the data response of a non-invalidating probe."""
        return 0

    def apply_fill_piggyback(self, st: SpecLineState, piggy: int) -> None:
        """Requester-side: record piggy-backed bits as Dirty after a fill.

        Also clears stale dirty bits — the fill delivered fresh data, so
        only the sub-blocks the *current* responders report as
        speculatively written remain unreliable.
        """

    def retains_on_invalidate(self, st: SpecLineState) -> bool:
        """Whether speculative state survives a line invalidation (the
        sub-blocking scheme keeps bits of lines invalidated by false-WAR
        so later probes can still detect conflicts)."""
        return False

    def abstains_from_supply(self, st: SpecLineState) -> bool:
        """Whether a cache holding this line must not supply it
        cache-to-cache.  Default: Dirty-marked sub-blocks (stale
        speculatively-forwarded words).  Lazy detection adds
        speculatively written lines — their data is uncommitted."""
        return st.any_dirty

    def arbitrate(self, st: SpecLineState, write_mask: int) -> ProbeCheck:
        """Commit-time arbitration check (lazy detection): does a
        committing transaction's published write mask collide with this
        line's speculative state?  Defaults to the scheme's invalidating
        probe rule so arbitration runs at detection granularity."""
        return self.check_probe(st, write_mask, True)

    # -- lifecycle -------------------------------------------------------------

    def clear_spec(self, st: SpecLineState) -> bool:
        """Gang-clear speculative bits at commit/abort.

        Dirty bits and remote-speculation bits (data/line metadata about
        *other* cores' transactions) survive.  Returns True when the state
        is now empty and the side table entry can be dropped.
        """
        st.sr = False
        st.sw = False
        st.read_mask = 0
        st.write_mask = 0
        st.wr_bits &= ~st.spec_bits  # keep dirty, drop S-RD/S-WR
        st.spec_bits = 0
        st.owner_txn = -1
        return st.wr_bits == 0 and st.rr_bits == 0

    def has_spec(self, st: SpecLineState) -> bool:
        return st.any_spec

    @abstractmethod
    def has_spec_write(self, st: SpecLineState) -> bool:
        """Whether the line holds speculatively written (unreplayable) data."""


class AsfBaselineDetector(ConflictDetector):
    """AMD ASF baseline: line-granularity SR/SW bits."""

    name = "asf"

    def __init__(self, line_size: int = 64) -> None:
        self.line_size = line_size

    def _record_read_bits(self, st: SpecLineState, mask: int) -> None:
        st.sr = True

    def _record_write_bits(self, st: SpecLineState, mask: int) -> None:
        st.sw = True

    def check_probe(
        self, st: SpecLineState, probe_mask: int, invalidating: bool
    ) -> ProbeCheck:
        if invalidating:
            return ProbeCheck(conflict=st.sr or st.sw)
        return ProbeCheck(conflict=st.sw)

    def has_spec_write(self, st: SpecLineState) -> bool:
        return st.sw


def make_detector(config: SystemConfig) -> ConflictDetector:
    """Build the detector the configuration asks for.

    Imports :mod:`repro.core` lazily so the substrate package has no
    import-time dependency on the contribution package.
    """
    scheme = config.htm.scheme
    if scheme is DetectionScheme.ASF_BASELINE:
        return AsfBaselineDetector(config.line_size)
    if scheme is DetectionScheme.SUBBLOCK:
        from repro.core.subblock import SubblockDetector

        return SubblockDetector(
            line_size=config.line_size,
            n_subblocks=config.htm.n_subblocks,
            dirty_state_enabled=config.htm.dirty_state_enabled,
            forced_waw_abort=config.htm.forced_waw_abort,
        )
    if scheme is DetectionScheme.PERFECT:
        from repro.core.perfect import PerfectDetector

        return PerfectDetector(line_size=config.line_size)
    if scheme is DetectionScheme.DECOUPLED:
        from repro.core.decoupled import CoherenceDecouplingDetector

        return CoherenceDecouplingDetector(config.line_size)
    raise ValueError(f"unknown detection scheme {scheme!r}")  # pragma: no cover
