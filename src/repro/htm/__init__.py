"""Hardware-transactional-memory substrate.

This package models the ASF-style HTM the paper builds on:

* :mod:`repro.htm.ops` — the operations a transaction performs,
* :mod:`repro.htm.txn` — transaction lifecycle and runtime sets,
* :mod:`repro.htm.conflict` — conflict records and the false/WAR/RAW/WAW
  classification used throughout the evaluation,
* :mod:`repro.htm.versioning` — lazy data versioning with unique word
  tokens (the substrate for the atomicity checker),
* :mod:`repro.htm.backoff` — the exponential backoff retry manager the
  authors put in their software library,
* :mod:`repro.htm.detector` — the conflict-detector interface plus the
  baseline ASF line-granularity detector,
* :mod:`repro.htm.machine` — the HTM-enabled multicore memory machine
  that ties detectors, caches and coherence probes together.

The paper's *contribution* — the speculative sub-blocking detector — lives
in :mod:`repro.core`.
"""

from repro.htm.backoff import BackoffManager
from repro.htm.conflict import ConflictRecord, ConflictType
from repro.htm.detector import AsfBaselineDetector, ConflictDetector, make_detector
from repro.htm.machine import HtmMachine
from repro.htm.ops import OpKind, TxnOp, read_op, work_op, write_op
from repro.htm.txn import AbortCause, Transaction, TxnStatus
from repro.htm.versioning import TokenAllocator, VersionTracker

__all__ = [
    "AbortCause",
    "AsfBaselineDetector",
    "BackoffManager",
    "ConflictDetector",
    "ConflictRecord",
    "ConflictType",
    "HtmMachine",
    "OpKind",
    "TokenAllocator",
    "Transaction",
    "TxnOp",
    "TxnStatus",
    "VersionTracker",
    "make_detector",
    "read_op",
    "work_op",
    "write_op",
]
