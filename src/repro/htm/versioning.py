"""Lazy data versioning with unique word tokens.

ASF buffers speculative stores in the L1/LSQ and only makes them
architecturally visible at commit (lazy versioning).  To *check* that the
protocol preserves atomicity — including the Figure 6 dirty-state hazards —
we model every 32-bit word's value as an opaque **token**:

* token ``0`` is the initial value of all memory;
* every speculative store allocates a fresh token, remembered with its
  writing transaction attempt;
* commit publishes the transaction's redo-log tokens to backing memory.

Because tokens are unique, "which write produced the value this load saw"
is always answerable, which turns serializability checking into simple
token comparisons (see :mod:`repro.sim.atomicity`).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["TokenAllocator", "TokenInfo", "VersionTracker"]


@dataclass(frozen=True, slots=True)
class TokenInfo:
    """Provenance of one store token."""

    token: int
    txn_uid: int
    word_addr: int


class TokenAllocator:
    """Allocates unique, monotonically increasing store tokens."""

    __slots__ = ("_next", "_info")

    def __init__(self) -> None:
        self._next = 1  # 0 is the initial-memory token
        self._info: dict[int, TokenInfo] = {}

    def allocate(self, txn_uid: int, word_addr: int) -> int:
        token = self._next
        self._next += 1
        self._info[token] = TokenInfo(token, txn_uid, word_addr)
        return token

    def provenance(self, token: int) -> TokenInfo | None:
        """Provenance of a token; None for the initial token 0."""
        return self._info.get(token)

    def writer_of(self, token: int) -> int | None:
        info = self._info.get(token)
        return None if info is None else info.txn_uid

    def __len__(self) -> int:
        return len(self._info)


class VersionTracker:
    """Tracks committed/aborted transaction attempts by uid.

    The atomicity checker needs to answer, for any token a committed
    transaction observed: "was its writer committed, and was it still the
    latest committed write of that word at my commit?".  This class keeps
    the committed/aborted sets; the latest-committed-write question is
    answered by the backing memory image itself (it only ever holds
    committed tokens).
    """

    __slots__ = ("committed", "aborted", "commit_order")

    def __init__(self) -> None:
        self.committed: set[int] = set()
        self.aborted: set[int] = set()
        self.commit_order: list[int] = []

    def on_commit(self, txn_uid: int) -> None:
        self.committed.add(txn_uid)
        self.commit_order.append(txn_uid)

    def on_abort(self, txn_uid: int) -> None:
        self.aborted.add(txn_uid)

    def is_committed(self, txn_uid: int) -> bool:
        return txn_uid in self.committed

    def is_aborted(self, txn_uid: int) -> bool:
        return txn_uid in self.aborted
