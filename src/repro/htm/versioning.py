"""Lazy data versioning with unique word tokens.

ASF buffers speculative stores in the L1/LSQ and only makes them
architecturally visible at commit (lazy versioning).  To *check* that the
protocol preserves atomicity — including the Figure 6 dirty-state hazards —
we model every 32-bit word's value as an opaque **token**:

* token ``0`` is the initial value of all memory;
* every speculative store allocates a fresh token, remembered with its
  writing transaction attempt;
* commit publishes the transaction's redo-log tokens to backing memory.

Because tokens are unique, "which write produced the value this load saw"
is always answerable, which turns serializability checking into simple
token comparisons (see :mod:`repro.sim.atomicity`).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["TokenAllocator", "TokenInfo", "VersionTracker", "restore_undo"]


def restore_undo(memory: dict[int, int], undo: dict[int, int]) -> None:
    """Roll an eager-versioning undo log back into backing memory.

    Writes every pre-transaction token back and clears the log.  Shared
    by all three kernels' abort paths so rollback is bit-identical.
    Restoring an explicit 0 (word was untouched before the transaction)
    is equivalent to absence: token 0 is the initial value of all memory
    and every reader uses ``memory.get(word, 0)``.
    """
    for word_addr, token in undo.items():
        memory[word_addr] = token
    undo.clear()


@dataclass(frozen=True, slots=True)
class TokenInfo:
    """Provenance of one store token."""

    token: int
    txn_uid: int
    word_addr: int


class TokenAllocator:
    """Allocates unique, monotonically increasing store tokens.

    Token ids are dense (1, 2, 3, …), so provenance is stored as two
    parallel flat lists indexed by token id instead of a dict of frozen
    :class:`TokenInfo` objects: ``allocate`` on the store hot path is two
    list appends, and the common provenance question ("who wrote this
    token?") is one list index via :meth:`writer_of`.  :class:`TokenInfo`
    survives as the cold-path view :meth:`provenance` materialises on
    demand.  Slot 0 holds the initial-memory token, which has no writer.
    """

    __slots__ = ("_writers", "_words")

    def __init__(self) -> None:
        self._writers: list[int] = [-1]  # [token] -> writing txn uid
        self._words: list[int] = [-1]  # [token] -> word address written

    def allocate(self, txn_uid: int, word_addr: int) -> int:
        writers = self._writers
        token = len(writers)
        writers.append(txn_uid)
        self._words.append(word_addr)
        return token

    def provenance(self, token: int) -> TokenInfo | None:
        """Provenance of a token; None for the initial token 0."""
        if 0 < token < len(self._writers):
            return TokenInfo(token, self._writers[token], self._words[token])
        return None

    def writer_of(self, token: int) -> int | None:
        """Writing txn uid of a token; None for the initial token 0."""
        if 0 < token < len(self._writers):
            return self._writers[token]
        return None

    def __len__(self) -> int:
        return len(self._writers) - 1


class VersionTracker:
    """Tracks committed/aborted transaction attempts by uid.

    The atomicity checker needs to answer, for any token a committed
    transaction observed: "was its writer committed, and was it still the
    latest committed write of that word at my commit?".  This class keeps
    the committed/aborted sets; the latest-committed-write question is
    answered by the backing memory image itself (it only ever holds
    committed tokens).
    """

    __slots__ = ("committed", "aborted", "commit_order")

    def __init__(self) -> None:
        self.committed: set[int] = set()
        self.aborted: set[int] = set()
        self.commit_order: list[int] = []

    def on_commit(self, txn_uid: int) -> None:
        self.committed.add(txn_uid)
        self.commit_order.append(txn_uid)

    def on_abort(self, txn_uid: int) -> None:
        self.aborted.add(txn_uid)

    def is_committed(self, txn_uid: int) -> bool:
        return txn_uid in self.committed

    def is_aborted(self, txn_uid: int) -> bool:
        return txn_uid in self.aborted
