"""Transaction operations.

A workload describes each transaction as a fixed list of :class:`TxnOp`
values — loads, stores and pure-computation gaps.  The list is *replayed
unchanged on every retry* (transactions are deterministic code), which is
what lets two detection schemes be compared on identical programs.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

__all__ = ["OpKind", "TxnOp", "read_op", "work_op", "write_op"]


class OpKind(enum.Enum):
    READ = "R"
    WRITE = "W"
    WORK = "C"  # pure computation: cycles with no memory traffic


@dataclass(frozen=True, slots=True)
class TxnOp:
    """One operation inside a transaction.

    ``addr``/``size`` are meaningful for READ/WRITE; ``cycles`` for WORK.
    """

    kind: OpKind
    addr: int = 0
    size: int = 0
    cycles: int = 0

    def __post_init__(self) -> None:
        if self.kind is OpKind.WORK:
            if self.cycles <= 0:
                raise ValueError("WORK op needs positive cycles")
        else:
            if self.size <= 0:
                raise ValueError(f"{self.kind.name} op needs positive size")
            if self.addr < 0:
                raise ValueError("negative address")

    @property
    def is_write(self) -> bool:
        return self.kind is OpKind.WRITE

    @property
    def is_mem(self) -> bool:
        return self.kind is not OpKind.WORK


def read_op(addr: int, size: int) -> TxnOp:
    """A transactional load of ``size`` bytes at ``addr``."""
    return TxnOp(OpKind.READ, addr=addr, size=size)


def write_op(addr: int, size: int) -> TxnOp:
    """A transactional store of ``size`` bytes at ``addr``."""
    return TxnOp(OpKind.WRITE, addr=addr, size=size)


def work_op(cycles: int) -> TxnOp:
    """Non-memory computation inside the transaction."""
    return TxnOp(OpKind.WORK, cycles=cycles)
