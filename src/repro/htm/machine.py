"""The HTM-enabled multicore memory machine.

:class:`HtmMachine` glues the substrate together: per-core L1s with MOESI
states (:mod:`repro.mem`), the snooping probe fabric, the pluggable
conflict detector, lazy data versioning, and the per-core speculative side
tables.  It exposes exactly the operations a core performs:

``begin_txn`` / ``access`` / ``commit`` / ``abort_self``

and resolves conflicts requester-wins inside ``access`` (the probed,
*earlier* transaction aborts — ASF's policy).

The machine is deliberately independent of the event engine so protocol
scenarios (e.g. the paper's Figures 6 and 7) can be scripted directly in
tests: interleave calls from different cores with increasing ``time``
arguments and inspect the outcomes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.config import (
    ConflictResolution,
    DetectionTiming,
    LazyArbitration,
    SystemConfig,
    VersionMgmt,
)
from repro.errors import ProtocolError
from repro.htm.conflict import ConflictRecord, classify_type
from repro.htm.detector import ConflictDetector, make_detector
from repro.htm.ops import TxnOp
from repro.htm.specstate import SpecLineState
from repro.htm.txn import AbortCause, Transaction
from repro.htm.versioning import TokenAllocator, VersionTracker, restore_undo
from repro.mem.address import WORD_SIZE, AddressMap
from repro.mem.bus import ProbeKind, ProbeRequest, SnoopBus
from repro.mem.hierarchy import MemorySystem
from repro.mem.moesi import (
    MoesiState,
    can_write_silently,
    on_local_write,
    on_non_invalidating_probe,
    supplies_data,
)
from repro.telemetry.events import EventSink
from repro.telemetry.sinks import DetailSink

__all__ = ["AccessOutcome", "HtmMachine"]

#: txn uid reserved for non-transactional stores (always "committed").
NON_TXN_UID = 0

#: Extra ways a set may temporarily grow by to host pinned speculative
#: lines, modelling the LSQ/locked-line buffering real ASF uses on top of
#: the 2-way L1 (without it, any transaction touching three same-set lines
#: would capacity-abort deterministically and livelock).
SPEC_OVERFLOW_WAYS = 6


class _RequesterAborted(Exception):
    """Internal: conflict resolution aborted the probing requester.

    Raised by the OLDER_WINS age rule and by the stall policy's
    deadlock-avoidance fallback.  Carries the conflict records already
    produced by the probe so the access outcome still reports them.
    """

    def __init__(self, cause: AbortCause, records: list[ConflictRecord]) -> None:
        super().__init__(cause.value)
        self.cause = cause
        self.records = records


class _RequesterStalled(Exception):
    """Internal: a STALL_BACKOFF requester parked instead of resolving.

    No transaction aborted and no conflict was recorded; the access must
    be retried in ``cycles`` — the engine replays the same op without
    advancing the program counter.
    """

    def __init__(self, cycles: int) -> None:
        super().__init__(str(cycles))
        self.cycles = cycles


@dataclass(slots=True)
class AccessOutcome:
    """Result of one transactional or plain memory access.

    ``stall_cycles`` is nonzero only under the stall/backoff resolution
    policy: the access did not retire — the engine must replay the same
    operation after that many cycles without advancing the transaction.
    """

    latency: int
    hit_l1: bool
    conflicts: list[ConflictRecord] = field(default_factory=list)
    self_abort: AbortCause | None = None
    dirty_reprobe: bool = False
    stall_cycles: int = 0

    @property
    def ok(self) -> bool:
        return self.self_abort is None


class HtmMachine:
    """Multicore machine with pluggable HTM conflict detection."""

    def __init__(
        self,
        config: SystemConfig,
        stats: EventSink | None = None,
        checker=None,
        detector: ConflictDetector | None = None,
        use_sharer_index: bool = True,
    ) -> None:
        self.config = config
        # All measurement goes through the EventSink protocol; ``stats``
        # accepts any sink (the name survives from the collector era —
        # tests and tools read ``machine.stats``).  ``sink`` is the same
        # object under its role-accurate name.
        self.sink: EventSink = stats if stats is not None else DetailSink()
        self.stats = self.sink
        self.checker = checker
        self.detector = detector if detector is not None else make_detector(config)
        # Policy-matrix axes, specialized once at construction so the
        # default ASF point pays a single flag test per branch site.
        policy = config.htm.policy
        self.policy = policy
        self._lazy_cd = policy.conflict_detection is DetectionTiming.LAZY
        self._eager_vm = policy.version_mgmt is VersionMgmt.EAGER
        self._stall_res = policy.resolution is ConflictResolution.STALL_BACKOFF
        self._committer_wins = (
            policy.lazy_arbitration is LazyArbitration.COMMITTER_WINS
        )
        if self._lazy_cd:
            from repro.htm.lazy import LazyPolicyDetector

            self.detector = LazyPolicyDetector(self.detector)
        # Stall queue state (STALL_BACKOFF only): which cores are parked,
        # how many in total (bounded by the policy's queue depth), and the
        # per-attempt stall budget that triggers the fallback abort.
        self._stalled = [False] * config.n_cores
        self._stall_count = 0
        self._stall_budget = [0] * config.n_cores
        self.mem = MemorySystem(config)
        self.mem.sink = self.sink
        self.bus = SnoopBus(config.n_cores)
        self.amap: AddressMap = self.mem.amap
        self.tokens = TokenAllocator()
        self.versions = VersionTracker()
        self.versions.on_commit(NON_TXN_UID)
        self.spec_tables: list[dict[int, SpecLineState]] = [
            dict() for _ in range(config.n_cores)
        ]
        # Per-line index of cores holding *any* speculative side state for
        # the line (mirror of spec_tables keys, as a bitmask).  Probes and
        # piggy-back collection visit only these cores instead of scanning
        # all n_cores side tables.  ``use_sharer_index=False`` falls back
        # to the original broadcast scan — observable behaviour is
        # identical (the parity tests assert it); only the visit set
        # shrinks.
        self.spec_holders: dict[int, int] = {}
        self.use_sharer_index = use_sharer_index
        self.active: list[Transaction | None] = [None] * config.n_cores
        self._txn_uid = NON_TXN_UID  # allocate() pre-increments

    # ------------------------------------------------------------------ txns

    def new_txn(
        self, core: int, static_id: int, ops: tuple[TxnOp, ...], attempt: int, time: int
    ) -> Transaction:
        """Allocate a transaction attempt (does not start it)."""
        self._txn_uid += 1
        return Transaction(
            uid=self._txn_uid,
            static_id=static_id,
            core=core,
            ops=ops,
            attempt=attempt,
            start_time=time,
        )

    def begin_txn(self, core: int, txn: Transaction) -> None:
        if self.active[core] is not None:
            raise ProtocolError(f"core {core} already has an active transaction")
        if txn.core != core:
            raise ProtocolError("transaction bound to a different core")
        self.active[core] = txn
        if self._stall_res:
            self._stall_budget[core] = self.policy.stall_limit
        self.sink.on_txn_start(core, txn.start_time, txn.attempt, txn.static_id)

    def commit(self, core: int, time: int) -> Transaction:
        """Commit the core's transaction: validate, publish redo, gang-clear.

        Lazy detectors (coherence decoupling) value-validate the read set
        first; a stale read aborts here instead of committing — callers
        must check the returned transaction's status.
        """
        txn = self._require_txn(core)
        if self.detector.requires_commit_validation and not self._read_set_valid(txn):
            return self._abort(core, time, AbortCause.VALIDATION)
        if self.checker is not None:
            self.checker.validate_commit(txn, self.mem.memory)
        if self._lazy_cd and self._committer_wins:
            self._commit_arbitrate(core, txn, time)
        if self._eager_vm:
            # In-place stores already published; the undo log just dies.
            txn.undo.clear()
        else:
            redo = txn.redo
            if redo:
                # Inlined mem_write_word: redo keys are built word-aligned by
                # _apply_store, so the alignment guard cannot fire here.
                memory = self.mem.memory
                for word_addr, token in redo.items():
                    memory[word_addr] = token
        if self._lazy_cd:
            # Commit broadcast (TCC-style): remote copies of the write
            # set refilled after the store-time invalidation (suppliers
            # abstain from spec-written lines, so those fills carried the
            # old committed data) go stale the moment the redo log
            # publishes.  Without this, a retrying reader re-validates
            # against its stale cached copy forever (livelock).
            self._commit_invalidate(core, txn)
        self.versions.on_commit(txn.uid)
        self._release_spec_lines(core, txn)
        txn.mark_committed(time)
        self.active[core] = None
        self.sink.on_txn_commit(core, time)
        return txn

    def abort_self(self, core: int, time: int, cause: AbortCause) -> Transaction:
        """Self-inflicted abort (capacity overflow or user abort)."""
        return self._abort(core, time, cause)

    def _read_set_valid(self, txn: Transaction) -> bool:
        """Commit-time value validation (lazy schemes).

        Every observed word must still hold the observed token in
        committed memory — the token-exact version of DPTM's value
        comparison.  Reads forwarded from the transaction's own stores are
        never in ``observed``, so they do not self-invalidate.
        """
        memory = self.mem.memory
        undo = txn.undo if self._eager_vm else None
        for word_addr, token in txn.observed.items():
            if undo is not None and word_addr in undo:
                # This transaction published in place after reading; the
                # pre-image it overwrote is in the undo log.  Compare
                # against that, not against its own uncommitted token.
                if undo[word_addr] != token:
                    return False
                continue
            if memory.get(word_addr, 0) != token:
                return False
        return True

    def _commit_arbitrate(self, core: int, txn: Transaction, time: int) -> None:
        """Lazy-detection committer-wins arbitration (TCC-style).

        The committing transaction's write set is checked — at the
        detection scheme's granularity — against every other running
        transaction's speculative state; overlapping victims abort with
        an ``at_commit`` conflict record.  Lines are walked in sorted
        order and victims in snoop delivery order so all three kernels
        arbitrate identically.
        """
        for line_addr in sorted(txn.write_lines):
            st = self.spec_tables[core].get(line_addr)
            mask = st.write_mask if st is not None else 0
            if not mask:
                continue
            if self.use_sharer_index:
                targets = self._rr_order(core, self.spec_holders.get(line_addr, 0))
            else:
                targets = self.bus.snoop_order(core)
            for r in targets:
                rst = self.spec_tables[r].get(line_addr)
                if rst is None:
                    continue
                victim = self.active[r]
                if victim is None or rst.owner_txn != victim.uid:
                    continue
                check = self.detector.arbitrate(rst, mask)
                if not check.conflict:
                    continue
                is_false = (mask & (rst.write_mask | rst.read_mask)) == 0
                rec = ConflictRecord(
                    time=time,
                    requester_core=core,
                    victim_core=r,
                    requester_txn=txn.uid,
                    victim_txn=victim.uid,
                    line_addr=line_addr,
                    line_index=self.amap.line_index(line_addr),
                    ctype=classify_type(True, rst.read_mask, rst.write_mask),
                    is_false=is_false,
                    requester_is_write=True,
                    requester_mask=mask,
                    victim_read_mask=rst.read_mask,
                    victim_write_mask=rst.write_mask,
                    forced_waw=check.forced_waw,
                    at_commit=True,
                )
                self.sink.on_conflict(rec)
                cause = (
                    AbortCause.CONFLICT_FALSE if is_false else AbortCause.CONFLICT_TRUE
                )
                self._abort(r, time, cause)

    # ------------------------------------------------------------------ access

    def access(
        self, core: int, addr: int, size: int, is_write: bool, time: int
    ) -> AccessOutcome:
        """Perform one memory access for ``core`` at global cycle ``time``.

        Uses the core's active transaction if any; accesses that span lines
        are split and processed per line (latencies accumulate, a capacity
        abort stops the remainder).
        """
        txn = self.active[core]
        if self._stall_res and self._stalled[core]:
            # The stall delay elapsed; the core leaves the queue and
            # re-executes the access (it may stall again immediately).
            self._stalled[core] = False
            self._stall_count -= 1
        total = AccessOutcome(latency=0, hit_l1=True)
        for chunk in self.amap.split(addr, size):
            out = self._access_line(
                core, chunk.line_addr, chunk.offset, chunk.size, is_write, time, txn
            )
            total.latency += out.latency
            total.hit_l1 = total.hit_l1 and out.hit_l1
            total.conflicts.extend(out.conflicts)
            total.dirty_reprobe = total.dirty_reprobe or out.dirty_reprobe
            if out.self_abort is not None:
                total.self_abort = out.self_abort
                break
            if out.stall_cycles:
                total.stall_cycles = out.stall_cycles
                break
        return total

    # ---------------------------------------------------------------- internals

    def _require_txn(self, core: int) -> Transaction:
        txn = self.active[core]
        if txn is None or not txn.running:
            raise ProtocolError(f"core {core} has no running transaction")
        return txn

    def _spec_state(self, core: int, line_addr: int) -> SpecLineState:
        table = self.spec_tables[core]
        st = table.get(line_addr)
        if st is None:
            st = SpecLineState(line_addr)
            table[line_addr] = st
            holders = self.spec_holders
            holders[line_addr] = holders.get(line_addr, 0) | (1 << core)
        return st

    def _spec_discard(self, core: int, line_addr: int) -> None:
        """Drop a core's side-table entry and unindex it."""
        if self.spec_tables[core].pop(line_addr, None) is None:
            return
        holders = self.spec_holders
        mask = holders.get(line_addr, 0) & ~(1 << core)
        if mask:
            holders[line_addr] = mask
        else:
            holders.pop(line_addr, None)

    def _rr_order(self, requester: int, mask: int) -> list[int]:
        """Cores named in ``mask`` in snoop delivery order: ascending ids
        starting after the requester, wrapping (the requester itself is
        never included).  Matches :meth:`SnoopBus.snoop_order` restricted
        to the candidate set, so filtered probes abort victims in exactly
        the broadcast order."""
        out: list[int] = []
        hi = mask >> (requester + 1)
        base = requester + 1
        while hi:
            low = hi & -hi
            out.append(base + low.bit_length() - 1)
            hi ^= low
        lo = mask & ((1 << requester) - 1)
        while lo:
            low = lo & -lo
            out.append(low.bit_length() - 1)
            lo ^= low
        return out

    def _iter_mask(self, mask: int, exclude: int) -> list[int]:
        """Cores named in ``mask`` in ascending order, minus ``exclude``."""
        mask &= ~(1 << exclude)
        out: list[int] = []
        while mask:
            low = mask & -mask
            out.append(low.bit_length() - 1)
            mask ^= low
        return out

    def _access_line(
        self,
        core: int,
        line_addr: int,
        offset: int,
        size: int,
        is_write: bool,
        time: int,
        txn: Transaction | None,
    ) -> AccessOutcome:
        detector = self.detector
        lat = self.config.latency
        l1 = self.mem.l1s[core]
        mask = ((1 << size) - 1) << offset

        line = l1.lookup(line_addr, touch=True)
        valid = line is not None and line.valid
        st = self.spec_tables[core].get(line_addr)

        # Two reasons a valid hit cannot proceed silently:
        # * the cached data is unreliable (Dirty sub-blocks: speculatively
        #   forwarded remote values) -> full miss path, probe + refetch;
        # * a store targets a sub-block with retained remote speculation
        #   (rr_bits) -> a probe must go out, but the local data (ours,
        #   authoritative) stays, so the upgrade path suffices.
        stale = (
            st is not None and valid and detector.data_stale(st, mask, is_write)
        )
        force_probe = stale or (
            st is not None and valid and is_write and detector.rr_hit(st, mask)
        )
        if force_probe:
            self.sink.on_dirty_reprobe(core, line_addr, time)

        out = AccessOutcome(latency=0, hit_l1=False, dirty_reprobe=force_probe)
        filled = False
        probed = False
        piggy = 0

        if is_write:
            if valid and can_write_silently(line.state) and not force_probe:
                # Silent store: M stays M, E upgrades to M without traffic.
                line.state = on_local_write(line.state)
                out.latency += lat.l1_hit
                out.hit_l1 = True
            else:
                probed = True
                try:
                    out.conflicts.extend(
                        self._broadcast_probe(
                            core, line_addr, mask, True, time, txn, True
                        )
                    )
                except _RequesterAborted as aborted:
                    out.conflicts.extend(aborted.records)
                    out.self_abort = aborted.cause
                    return out
                except _RequesterStalled as stalled:
                    out.stall_cycles = stalled.cycles
                    return out
                if valid and not stale:
                    # Ownership upgrade -> M with a probe; data already
                    # local and clean (no Dirty sub-blocks — checked
                    # above).  Taken for S/O copies and for M/E copies
                    # that only needed the rr_bits conflict check.
                    self._invalidate_remotes(core, line_addr)
                    line.state = MoesiState.MODIFIED
                    self.mem.note_owner(line_addr, core)
                    out.latency += lat.l1_hit + lat.cache_to_cache // 2
                    out.hit_l1 = True
                else:
                    data, fill_lat, piggy = self._fetch_line(core, line_addr)
                    self._invalidate_remotes(core, line_addr)
                    if not self._fill_l1(core, line_addr, MoesiState.MODIFIED, data, txn):
                        return self._capacity_abort(core, time, out)
                    out.latency += fill_lat
                    filled = True
        else:
            if valid and not stale:
                out.latency += lat.l1_hit
                out.hit_l1 = True
            else:
                probed = True
                try:
                    out.conflicts.extend(
                        self._broadcast_probe(
                            core, line_addr, mask, False, time, txn, False
                        )
                    )
                except _RequesterAborted as aborted:
                    out.conflicts.extend(aborted.records)
                    out.self_abort = aborted.cause
                    return out
                except _RequesterStalled as stalled:
                    out.stall_cycles = stalled.cycles
                    return out
                data, fill_lat, piggy = self._fetch_line(core, line_addr)
                self._demote_remotes(core, line_addr)
                had_sharers = self.mem.holders_mask(line_addr, core) != 0
                new_state = MoesiState.SHARED if had_sharers else MoesiState.EXCLUSIVE
                if not self._fill_l1(core, line_addr, new_state, data, txn):
                    return self._capacity_abort(core, time, out)
                out.latency += fill_lat
                filled = True

        line = l1.lookup(line_addr, touch=False)
        if line is None or not line.valid:  # pragma: no cover - fill guarantees
            raise ProtocolError(f"line {line_addr:#x} not resident after access")

        if probed and not self._lazy_cd:
            # Snapshot which sub-blocks other running transactions still
            # hold speculative state on (survivors of the probe: retained
            # readers after a false-WAR invalidation, non-overlapping
            # writers under the perfect scheme).  A later silent store
            # into one of them must re-probe — see SpecLineState.rr_bits.
            # (Moot under lazy detection: probes never check conflicts.)
            remote_spec = self._remote_spec_bits(core, line_addr)
            if remote_spec or (st is not None and st.rr_bits):
                self._spec_state(core, line_addr).rr_bits = remote_spec

        # -- speculative bookkeeping ------------------------------------
        if txn is not None:
            st = self._spec_state(core, line_addr)
            if st.owner_txn == -1:
                st.owner_txn = txn.uid
            elif st.owner_txn != txn.uid:
                raise ProtocolError(
                    f"stale speculative state on line {line_addr:#x} "
                    f"(owner {st.owner_txn}, txn {txn.uid})"
                )
            if filled:
                # Fresh data arrived: recompute Dirty from the piggy-back
                # bits of the transactions currently holding speculative
                # writes (for the sub-blocking scheme, an invalidating
                # probe aborted them all, so piggy is 0 and Dirty clears).
                detector.apply_fill_piggyback(st, piggy)
            if is_write:
                detector.record_write(st, mask)
                txn.note_write(line_addr)
            else:
                detector.record_read(st, mask)
                txn.note_read(line_addr)
            l1.pin(line_addr)
        elif filled and piggy:
            # Non-transactional fill still records data-validity info.
            st = self._spec_state(core, line_addr)
            detector.apply_fill_piggyback(st, piggy)

        # -- data movement -------------------------------------------------
        if is_write:
            self._apply_store(core, line, line_addr, offset, size, txn)
        else:
            self._apply_load(core, line, line_addr, offset, size, txn)

        self.sink.on_access(core, line_addr, offset, is_write, out.hit_l1)
        return out

    # -- probes ---------------------------------------------------------------

    def _broadcast_probe(
        self,
        core: int,
        line_addr: int,
        mask: int,
        invalidating: bool,
        time: int,
        txn: Transaction | None,
        is_write: bool,
    ) -> list[ConflictRecord]:
        probe = ProbeRequest(
            kind=ProbeKind.INVALIDATING if invalidating else ProbeKind.NON_INVALIDATING,
            line_addr=line_addr,
            byte_mask=mask,
            requester=core,
            requester_txn=txn.uid if txn is not None else None,
            is_write=is_write,
        )
        self.bus.count_probe(probe)
        records: list[ConflictRecord] = []
        if self.use_sharer_index:
            targets = self._rr_order(core, self.spec_holders.get(line_addr, 0))
        else:
            targets = self.bus.snoop_order(core)
        for r in targets:
            rst = self.spec_tables[r].get(line_addr)
            if rst is None:
                continue
            victim = self.active[r]
            if victim is None or rst.owner_txn != victim.uid:
                continue  # dirty-only or stale state: no active speculation
            check = self.detector.check_probe(rst, mask, invalidating)
            if not check.conflict:
                continue
            victim_footprint = rst.write_mask | (rst.read_mask if invalidating else 0)
            is_false = (mask & victim_footprint) == 0
            rec = ConflictRecord(
                time=time,
                requester_core=core,
                victim_core=r,
                requester_txn=txn.uid if txn is not None else -1,
                victim_txn=victim.uid,
                line_addr=line_addr,
                line_index=self.amap.line_index(line_addr),
                ctype=classify_type(is_write, rst.read_mask, rst.write_mask),
                is_false=is_false,
                requester_is_write=is_write,
                requester_mask=mask,
                victim_read_mask=rst.read_mask,
                victim_write_mask=rst.write_mask,
                forced_waw=check.forced_waw,
            )
            cause = AbortCause.CONFLICT_FALSE if is_false else AbortCause.CONFLICT_TRUE
            if self._stall_res and txn is not None:
                # Stall/backoff resolution: nobody aborts if the requester
                # can park.  The decision is made at the first conflicting
                # victim, before any abort, so a stalled access is
                # side-effect-free and replayable.
                if (
                    self._stall_budget[core] > 0
                    and self._stall_count < self.policy.stall_queue_depth
                ):
                    self._stall_budget[core] -= 1
                    # Deterministic delay, scaled by queue occupancy so
                    # symmetric waiters separate without RNG draws.
                    delay = self.policy.stall_cycles * (1 + self._stall_count)
                    self._stalled[core] = True
                    self._stall_count += 1
                    self.sink.on_stall(core, time, delay, False)
                    raise _RequesterStalled(delay)
                # Deadlock avoidance: budget or queue exhausted — the
                # requester aborts itself instead of waiting forever.
                records.append(rec)
                self.sink.on_conflict(rec)
                self.sink.on_stall(core, time, 0, True)
                self._abort(core, time, cause)
                raise _RequesterAborted(cause, records)
            records.append(rec)
            self.sink.on_conflict(rec)
            if (
                self.config.htm.resolution is ConflictResolution.OLDER_WINS
                and txn is not None
                and victim.start_time < txn.start_time
            ):
                # Age-based resolution: the younger *requester* yields.
                self._abort(core, time, cause)
                raise _RequesterAborted(cause, records)
            self._abort(r, time, cause)
        return records

    def _holder_targets(self, core: int, line_addr: int) -> list[int]:
        """Cores that may hold a valid copy of the line (ascending order)."""
        if self.use_sharer_index:
            return self._iter_mask(self.mem.holders_mask(line_addr), core)
        return [r for r in range(self.config.n_cores) if r != core]

    def _spec_targets(self, core: int, line_addr: int) -> list[int]:
        """Cores that may hold side state for the line (ascending order)."""
        if self.use_sharer_index:
            return self._iter_mask(self.spec_holders.get(line_addr, 0), core)
        return [r for r in range(self.config.n_cores) if r != core]

    def _commit_invalidate(self, core: int, txn: Transaction) -> None:
        """Invalidate remote copies of a lazy-detection committer's write
        set (deterministic line order; kernels override the walk)."""
        for line_addr in sorted(txn.write_lines):
            self._invalidate_remotes(core, line_addr)

    def _invalidate_remotes(self, core: int, line_addr: int) -> None:
        for r in self._holder_targets(core, line_addr):
            l1 = self.mem.l1s[r]
            line = l1.lookup(line_addr, touch=False)
            if line is None or not line.valid:
                continue
            rst = self.spec_tables[r].get(line_addr)
            retain = rst is not None and self.detector.retains_on_invalidate(rst)
            l1.invalidate(line_addr, retain=retain)
            if not retain and rst is not None and not rst.any_spec:
                # Dirty-only info dies with the discarded copy.
                self._spec_discard(r, line_addr)

    def _demote_remotes(self, core: int, line_addr: int) -> None:
        for r in self._holder_targets(core, line_addr):
            line = self.mem.l1s[r].lookup(line_addr, touch=False)
            if line is not None and line.valid:
                if line.state is MoesiState.EXCLUSIVE:
                    # E→S loses supply capability; M→O keeps it (same
                    # core), so only the E demotion moves the pointer.
                    self.mem.disown(line_addr, r)
                line.state = on_non_invalidating_probe(line.state)

    def _remote_spec_bits(self, core: int, line_addr: int) -> int:
        """Union of other cores' *active* speculative sub-block bitmaps for
        the line (valid or invalidated-but-retained copies alike)."""
        bits = 0
        for r in self._spec_targets(core, line_addr):
            rst = self.spec_tables[r].get(line_addr)
            if rst is None:
                continue
            victim = self.active[r]
            if victim is None or rst.owner_txn != victim.uid:
                continue
            bits |= rst.spec_bits
        return bits

    def _fetch_line(self, core: int, line_addr: int) -> tuple[list[int], int, int]:
        """Fetch line data: remote owner cache, local L2/L3, or memory.

        Returns ``(data, latency, piggyback_mask)``.  A cache holding
        Dirty-marked sub-blocks of the line abstains from supplying: its
        copy may contain stale speculatively-forwarded words, and Dirty
        marks are local (they do not travel with data).  Backing memory is
        always committed-clean in this model, so falling through is safe.
        """
        supplier: int | None = None
        if self.use_sharer_index:
            # O(1) supplier selection: the MOESI invariant admits at most
            # one supply-capable (M/O/E) copy, and ``l1_owner`` tracks it,
            # so there is nothing to walk — either the owner supplies or
            # memory does.  An owner equal to the requester only happens
            # on the dirty-refetch path, where no *other* supplier can
            # exist either.
            owner = self.mem.l1_owner.get(line_addr, -1)
            if owner >= 0 and owner != core:
                line = self.mem.l1s[owner].lookup(line_addr, touch=False)
                if line is not None and line.valid and supplies_data(line.state):
                    rst = self.spec_tables[owner].get(line_addr)
                    if rst is None or not self.detector.abstains_from_supply(rst):
                        supplier = owner
        else:
            for r in self.bus.snoop_order(core):
                line = self.mem.l1s[r].lookup(line_addr, touch=False)
                if line is None or not line.valid or not supplies_data(line.state):
                    continue
                rst = self.spec_tables[r].get(line_addr)
                if rst is not None and self.detector.abstains_from_supply(rst):
                    continue  # stale words present; let memory respond
                supplier = r
                break
        # Piggy-back bits are collected from every core holding
        # speculatively written sub-blocks of the line — including (for the
        # idealised perfect system) invalidated-but-retained speculative
        # lines.
        piggy = 0
        for r in self._spec_targets(core, line_addr):
            rst = self.spec_tables[r].get(line_addr)
            victim = self.active[r]
            if rst is None or victim is None or rst.owner_txn != victim.uid:
                continue
            piggy |= self.detector.piggyback_mask(rst)
        if supplier is not None:
            src = self.mem.l1s[supplier].lookup(line_addr, touch=False)
            assert src is not None and src.data is not None
            data = list(src.data)
            latency = self.mem.fill_latency(
                core, line_addr, remote_supplier=True
            ).latency
            self.bus.count_response(from_cache=True, piggyback=piggy != 0)
        else:
            result = self.mem.fill_latency(core, line_addr, remote_supplier=False)
            data = self.mem.mem_read_line(line_addr)
            latency = result.latency
            self.bus.count_response(from_cache=False, piggyback=piggy != 0)
        self.mem.install_lower_levels(core, line_addr)
        return data, latency, piggy

    def _fill_l1(
        self,
        core: int,
        line_addr: int,
        state: MoesiState,
        data: list[int],
        txn: Transaction | None,
    ) -> bool:
        """Install a line in the core's L1; False means capacity-blocked."""
        if txn is not None:
            # Overlay the transaction's own buffered stores (the line may
            # have been invalidated-and-refetched while we hold redo data).
            if line_addr in txn.write_lines:
                base = line_addr
                for wi in range(self.amap.words_per_line):
                    tok = txn.redo.get(base + wi * WORD_SIZE)
                    if tok is not None:
                        data[wi] = tok
        l1 = self.mem.l1s[core]
        result = l1.fill(line_addr, state, data)
        if result.capacity_blocked:
            # Grow the set within the speculative overflow allowance.
            if l1.set_occupancy(line_addr) < l1.associativity + SPEC_OVERFLOW_WAYS:
                result = self._force_fill(l1, line_addr, state, data)
            else:
                return False
        if result.evicted is not None:
            self._on_l1_eviction(core, result.evicted)
        if state is MoesiState.MODIFIED or state is MoesiState.EXCLUSIVE:
            self.mem.note_owner(line_addr, core)
        return True

    def _force_fill(self, l1, line_addr: int, state: MoesiState, data: list[int]):
        """Insert beyond nominal associativity (LSQ/LLB overflow modelling)."""
        s = l1._set_of(line_addr)  # noqa: SLF001 - machine is a friend of the cache
        from repro.mem.cache import CacheLine, FillResult

        cl = CacheLine(addr=line_addr, state=state, data=data)
        s[line_addr] = cl
        if l1.observer is not None:
            l1.observer(line_addr, True)
        return FillResult(line=cl)

    def _on_l1_eviction(self, core: int, evicted) -> None:
        """Clean up side state when an unpinned line leaves the L1."""
        st = self.spec_tables[core].get(evicted.addr)
        if st is not None and not st.any_spec:
            self._spec_discard(core, evicted.addr)
        # Dirty write-back is a no-op for data: committed tokens already
        # live in backing memory (commit publishes the redo log), and
        # speculative lines are pinned so they are never evicted.

    def _capacity_abort(self, core: int, time: int, out: AccessOutcome) -> AccessOutcome:
        txn = self.active[core]
        if txn is None:
            # Non-transactional access to a set full of pinned lines:
            # bypass the cache (serve uncached at memory latency).
            out.latency += self.config.latency.memory
            out.self_abort = None
            return out
        self._abort(core, time, AbortCause.CAPACITY)
        out.self_abort = AbortCause.CAPACITY
        return out

    # -- data movement ---------------------------------------------------------

    def _apply_store(
        self, core: int, line, line_addr: int, offset: int, size: int, txn
    ) -> None:
        assert line.data is not None
        base = line_addr
        for wi in self.amap.word_indices(offset, size):
            word_addr = base + wi * WORD_SIZE
            if txn is not None:
                token = self.tokens.allocate(txn.uid, word_addr)
                txn.record_store(word_addr, token)
                if self._eager_vm:
                    # Eager versioning: publish in place now, remember the
                    # overwritten value for the abort rollback.  First
                    # touch only — the undo log keeps the pre-transaction
                    # value, not intermediate ones.
                    memory = self.mem.memory
                    undo = txn.undo
                    if word_addr not in undo:
                        undo[word_addr] = memory.get(word_addr, 0)
                    memory[word_addr] = token
            else:
                # Non-transactional store: immediately visible.  Each one
                # gets its own (instantly committed) writer id so the
                # serializability checker can order it in the history
                # like a one-word transaction.
                self._txn_uid += 1
                uid = self._txn_uid
                token = self.tokens.allocate(uid, word_addr)
                self.versions.on_commit(uid)
                self.mem.mem_write_word(word_addr, token)
                if self.checker is not None:
                    self.checker.record_plain_write(word_addr, token)
            line.data[wi] = token

    def _apply_load(
        self, core: int, line, line_addr: int, offset: int, size: int, txn
    ) -> None:
        assert line.data is not None
        base = line_addr
        for wi in self.amap.word_indices(offset, size):
            word_addr = base + wi * WORD_SIZE
            token: int | None = None
            if txn is not None:
                token = txn.forwarded_value(word_addr)
            if token is None:
                token = line.data[wi]
            if txn is not None:
                before = word_addr in txn.observed or word_addr in txn.redo
                txn.observe_read(word_addr, token)
                if not before and self.checker is not None:
                    self.checker.observe_read(txn, word_addr, token)

    # -- abort ------------------------------------------------------------------

    def _abort(self, core: int, time: int, cause: AbortCause) -> Transaction:
        txn = self._require_txn(core)
        self.versions.on_abort(txn.uid)
        if self._eager_vm and txn.undo:
            restore_undo(self.mem.memory, txn.undo)
        if self._stall_res and self._stalled[core]:
            # A stalled core can die remotely; free its queue slot.
            self._stalled[core] = False
            self._stall_count -= 1
        l1 = self.mem.l1s[core]
        table = self.spec_tables[core]
        # Walk write lines then read-only lines instead of allocating the
        # footprint union; per-line cleanup only touches that line's state,
        # so iteration order cannot change the final machine state.
        write_lines = txn.write_lines
        for written, lines in ((True, write_lines), (False, txn.read_lines)):
            for line_addr in lines:
                if not written and line_addr in write_lines:
                    continue
                st = table.get(line_addr)
                empty = self.detector.clear_spec(st) if st is not None else True
                l1.unpin(line_addr)
                line = l1.lookup(line_addr, touch=False)
                if line is not None and (written or not line.valid):
                    # Discard speculatively written / stale retained lines.
                    l1.drop(line_addr)
                    line = None
                if st is not None and (empty or line is None):
                    self._spec_discard(core, line_addr)
        txn.mark_aborted(time, cause)
        self.active[core] = None
        self.sink.on_txn_abort(core, time, cause.value, txn.wasted_cycles)
        return txn

    def _release_spec_lines(self, core: int, txn: Transaction) -> None:
        """Commit-path cleanup: unpin and gang-clear speculative state."""
        l1 = self.mem.l1s[core]
        table = self.spec_tables[core]
        write_lines = txn.write_lines
        for first, lines in ((True, write_lines), (False, txn.read_lines)):
            for line_addr in lines:
                if not first and line_addr in write_lines:
                    continue
                st = table.get(line_addr)
                empty = self.detector.clear_spec(st) if st is not None else True
                l1.unpin(line_addr)
                line = l1.lookup(line_addr, touch=False)
                if line is not None and not line.valid:
                    # Invalidated-but-retained line: data is stale, drop it.
                    l1.drop(line_addr)
                    line = None
                if st is not None and (empty or line is None):
                    self._spec_discard(core, line_addr)
