"""Conflict records and classification.

Every detected transactional conflict is classified two ways, exactly as
the paper's Section III measures them:

* **true vs false** — ground truth from byte-granularity footprints: the
  conflict is *false* when the requester's access bytes are disjoint from
  the victim's speculative bytes (pure false sharing within the line);
* **type** — which ordering produced it:

  - ``RAW`` read-after-write: a transactional *load* probed a line the
    victim had speculatively *written*;
  - ``WAR`` write-after-read: a transactional *store* probed a line the
    victim had speculatively *read*;
  - ``WAW`` write-after-write: a transactional *store* probed a line the
    victim had speculatively *written* (and not read) — the paper measures
    this at ≈0% of false conflicts and the sub-blocking scheme knowingly
    does not optimise it.

Classification is independent of the detector that raised the conflict, so
baseline/sub-block/perfect runs produce directly comparable statistics.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

__all__ = ["ConflictRecord", "ConflictType", "classify_type"]


class ConflictType(enum.Enum):
    RAW = "RAW"
    WAR = "WAR"
    WAW = "WAW"


def classify_type(
    requester_is_write: bool, victim_read_mask: int, victim_write_mask: int
) -> ConflictType:
    """Type a conflict from the access direction and the victim footprint.

    A load can only conflict with speculative writes, so requester-read is
    always RAW.  For a store, the conflict is WAW only when the victim was a
    pure writer of the line (never read it); if the victim read the line at
    all, the lost work is read-dependent and the paper's breakdown counts it
    as WAR.  This matches the observation that WAW false conflicts are
    negligible: transactional writers almost always read nearby data too.
    """
    if not requester_is_write:
        return ConflictType.RAW
    if victim_write_mask and not victim_read_mask:
        return ConflictType.WAW
    return ConflictType.WAR


@dataclass(frozen=True, slots=True)
class ConflictRecord:
    """One detected (and acted-on) transactional conflict.

    ``is_false`` is the byte-granularity ground truth; ``forced_waw`` marks
    sub-blocking's "abort anyway, speculative data would be lost" rule
    (Section IV-D-2).  ``time`` is the global cycle of the probing access
    and ``line_index`` the dense line number used by the Figure 4
    histogram.  ``at_commit`` marks lazy-detection arbitration: the
    "requester" is a committing transaction and the victim was killed by
    its commit broadcast rather than by an access-time probe.
    """

    time: int
    requester_core: int
    victim_core: int
    requester_txn: int
    victim_txn: int
    line_addr: int
    line_index: int
    ctype: ConflictType
    is_false: bool
    requester_is_write: bool
    requester_mask: int
    victim_read_mask: int
    victim_write_mask: int
    forced_waw: bool = False
    at_commit: bool = False

    @property
    def overlap_mask(self) -> int:
        """Bytes genuinely shared by requester and victim (0 for false)."""
        victim = self.victim_write_mask
        if self.requester_is_write:
            victim |= self.victim_read_mask
        return self.requester_mask & victim

    def describe(self) -> str:
        kind = "FALSE" if self.is_false else "TRUE"
        return (
            f"@{self.time} core{self.requester_core}"
            f"{'W' if self.requester_is_write else 'R'} -> "
            f"core{self.victim_core} line {self.line_addr:#x} "
            f"{self.ctype.value} {kind}"
            + (" (forced WAW)" if self.forced_waw else "")
        )
