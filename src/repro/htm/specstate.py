"""Per-(core, line) speculative state.

One :class:`SpecLineState` instance exists for every line a core currently
holds speculative or dirty information about.  It is *decoupled from the
cache's coherence state* — the paper's scheme explicitly checks conflicts
"for both valid and invalidated cache lines" — so it lives in a per-core
side table keyed by line address, not inside the cache line.

The structure is a superset of what each scheme uses:

* the baseline ASF detector uses only ``sr``/``sw`` (one speculative-read
  and one speculative-write bit per line);
* the sub-blocking detector uses ``spec_bits``/``wr_bits`` (the Table I
  per-sub-block encoding: SPEC=0,WR=0 non-speculative; 0,1 Dirty; 1,0
  S-RD; 1,1 S-WR);
* ``read_mask``/``write_mask`` are byte-granularity ground truth kept by
  *every* scheme, used only to classify detected conflicts as true or
  false — they are measurement instrumentation, not architecture.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["SpecLineState"]


@dataclass(slots=True)
class SpecLineState:
    line_addr: int
    owner_txn: int = -1
    # Ground truth (instrumentation).
    read_mask: int = 0
    write_mask: int = 0
    # Baseline ASF per-line bits.
    sr: bool = False
    sw: bool = False
    # Sub-blocking per-sub-block bit vectors (n-bit ints).
    spec_bits: int = 0
    wr_bits: int = 0
    # Remote-speculation bits: sub-blocks that *other* cores' running
    # transactions hold speculative state on, snapshotted from probe
    # responses/fills.  Needed because the scheme retains speculative bits
    # on lines invalidated by non-conflicting (false-WAR) stores: the
    # writer then owns the line in M and would store *silently*, so without
    # this marking a later store to a retained reader's sub-block would
    # emit no probe and miss a true conflict.  Symmetric to Dirty: line
    # metadata, surviving commit/abort, forcing a probe when hit.
    rr_bits: int = 0

    @property
    def dirty_bits(self) -> int:
        """Sub-blocks in the Dirty state (SPEC=0, WR=1)."""
        return self.wr_bits & ~self.spec_bits

    @property
    def swr_bits(self) -> int:
        """Sub-blocks in the S-WR state (SPEC=1, WR=1)."""
        return self.spec_bits & self.wr_bits

    @property
    def srd_bits(self) -> int:
        """Sub-blocks in the S-RD state (SPEC=1, WR=0)."""
        return self.spec_bits & ~self.wr_bits

    @property
    def any_spec(self) -> bool:
        """Any speculative (non-dirty) state held by an active transaction."""
        return self.sr or self.sw or self.spec_bits != 0

    @property
    def any_dirty(self) -> bool:
        return self.dirty_bits != 0
