"""repro — reproduction of *"Reducing False Transactional Conflicts with
Speculative Sub-blocking State"* (Nai & Lee, IEEE IPDPSW 2013).

The package models an AMD-ASF-style hardware transactional memory on top
of a MOESI-coherent multicore, implements the paper's speculative
sub-blocking conflict detector, and regenerates every table and figure of
the paper's evaluation from seeded synthetic STAMP/RMS-TM workloads.

Quickstart::

    from repro import compare_systems, get_workload

    results = compare_systems(get_workload("vacation", 200), seed=1)
    base, sub = results["asf"], results["subblock"]
    print("false conflict rate:", base.false_rate)
    print("false conflicts eliminated:", sub.false_reduction_over(base))
    print("execution improvement:", sub.speedup_over(base))

Layering (each layer only depends on the ones above it):

* :mod:`repro.util`, :mod:`repro.config`, :mod:`repro.errors`
* :mod:`repro.mem` — caches, MOESI coherence, Table II hierarchy
* :mod:`repro.htm` — transactions, versioning, baseline ASF, the machine
* :mod:`repro.core` — the paper's sub-blocking detector (+ perfect bound)
* :mod:`repro.sim` — event engine, statistics, atomicity checker
* :mod:`repro.workloads` — the ten Table III benchmark generators
* :mod:`repro.analysis` — figure/table regeneration
"""

from repro.config import (
    CacheConfig,
    DetectionScheme,
    HtmConfig,
    LatencyConfig,
    SystemConfig,
    default_system,
)
from repro.errors import (
    AtomicityViolation,
    ConfigError,
    ProtocolError,
    ReproError,
    SimulationError,
    WorkloadError,
)
from repro.sim.runner import RunResult, compare_systems, run_workload
from repro.workloads.registry import BENCHMARK_NAMES, all_workloads, get_workload

__version__ = "1.0.0"

__all__ = [
    "AtomicityViolation",
    "BENCHMARK_NAMES",
    "CacheConfig",
    "ConfigError",
    "DetectionScheme",
    "HtmConfig",
    "LatencyConfig",
    "ProtocolError",
    "ReproError",
    "RunResult",
    "SimulationError",
    "SystemConfig",
    "WorkloadError",
    "__version__",
    "all_workloads",
    "compare_systems",
    "default_system",
    "get_workload",
    "run_workload",
]
