"""repro — reproduction of *"Reducing False Transactional Conflicts with
Speculative Sub-blocking State"* (Nai & Lee, IEEE IPDPSW 2013).

The package models an AMD-ASF-style hardware transactional memory on top
of a MOESI-coherent multicore, implements the paper's speculative
sub-blocking conflict detector, and regenerates every table and figure of
the paper's evaluation from seeded synthetic STAMP/RMS-TM workloads.

Quickstart::

    from repro import compare_systems, get_workload

    results = compare_systems(get_workload("vacation", 200), seed=1)
    base, sub = results["asf"], results["subblock"]
    print("false conflict rate:", base.false_rate)
    print("false conflicts eliminated:", sub.false_reduction_over(base))
    print("execution improvement:", sub.speedup_over(base))

Record a run's event trace and run conflict forensics over it::

    from repro import analyze_trace, default_system, run_workload

    cfg = default_system().with_telemetry(sink="trace", trace_path="ev.jsonl")
    run_workload(get_workload("kmeans", 200), cfg, seed=1)
    print(analyze_trace("ev.jsonl"))

Everything in ``__all__`` below is the stable public API: these names
keep working across minor releases, with renames bridged by
``DeprecationWarning`` shims for one release before removal.  Deeper
module paths are implementation detail.

Layering (each layer only depends on the ones above it):

* :mod:`repro.util`, :mod:`repro.config`, :mod:`repro.errors`
* :mod:`repro.mem` — caches, MOESI coherence, Table II hierarchy
* :mod:`repro.htm` — transactions, versioning, baseline ASF, the machine
* :mod:`repro.core` — the paper's sub-blocking detector (+ perfect bound)
* :mod:`repro.sim` — event engine, statistics, atomicity checker
* :mod:`repro.workloads` — the ten Table III benchmark generators
* :mod:`repro.analysis` — figure/table regeneration
"""

from repro.analysis.experiments import (
    SeedSweepResults,
    SuiteResults,
    run_seed_sweep,
    run_suite,
)
from repro.analysis.granularity import conflict_survives, reduction_by_granularity
from repro.analysis.trace import (
    ConflictTimeline,
    TraceHeader,
    TraceReader,
    analyze_trace,
    read_events,
)
from repro.config import (
    POLICY_PRESETS,
    CacheConfig,
    ConflictResolution,
    DetectionScheme,
    DetectionTiming,
    HtmConfig,
    HtmPolicy,
    LatencyConfig,
    LazyArbitration,
    SystemConfig,
    VersionMgmt,
    default_system,
)
from repro.errors import (
    AtomicityViolation,
    ConfigError,
    ProtocolError,
    ReproError,
    SimulationError,
    WorkloadError,
)
from repro.sim.parallel import (
    ExecConfig,
    RunSpec,
    build_executor,
    iter_many,
    parse_executor_spec,
    run_many,
)
from repro.sim.runner import (
    RunResult,
    compare_systems,
    compare_systems_seeds,
    run_workload,
)
from repro.store import MergeReport, ResultsStore, StoreEntry
from repro.telemetry import RunSummary, aggregate_metrics, merge_summaries
from repro.workloads.registry import BENCHMARK_NAMES, all_workloads, get_workload

__version__ = "1.2.0"

__all__ = [
    "AtomicityViolation",
    "BENCHMARK_NAMES",
    "CacheConfig",
    "ConfigError",
    "ConflictResolution",
    "ConflictTimeline",
    "DetectionScheme",
    "DetectionTiming",
    "ExecConfig",
    "HtmConfig",
    "HtmPolicy",
    "LatencyConfig",
    "LazyArbitration",
    "MergeReport",
    "POLICY_PRESETS",
    "ProtocolError",
    "ReproError",
    "ResultsStore",
    "RunResult",
    "RunSpec",
    "RunSummary",
    "SeedSweepResults",
    "SimulationError",
    "StoreEntry",
    "SuiteResults",
    "SystemConfig",
    "TraceHeader",
    "TraceReader",
    "VersionMgmt",
    "WorkloadError",
    "__version__",
    "aggregate_metrics",
    "all_workloads",
    "analyze_trace",
    "build_executor",
    "compare_systems",
    "compare_systems_seeds",
    "conflict_survives",
    "default_system",
    "get_workload",
    "iter_many",
    "merge_summaries",
    "parse_executor_spec",
    "read_events",
    "reduction_by_granularity",
    "run_many",
    "run_seed_sweep",
    "run_suite",
    "run_workload",
]
