"""repro.store — checkpoint/resume persistence for sweep results.

The storage layer of the streaming sweep pipeline: every completed
:class:`~repro.sim.parallel.RunSpec` is identified by a content hash
(:mod:`repro.store.keys`) and appended as one JSON line to a per-sweep
:class:`~repro.store.results.ResultsStore`, whose manifest is replaced
atomically.  ``iter_many``/``run_many`` accept a store and (a) skip
specs the store already holds, serving their results without
re-simulating, and (b) persist each fresh completion as soon as it
arrives — so an interrupted 10k-spec sweep resumes where it died
instead of starting over.  Because keys are content hashes,
:meth:`~repro.store.results.ResultsStore.merge` unions per-host
checkpoint directories from a distributed sweep idempotently (``repro-asf
store merge``).

See ``docs/ARCHITECTURE.md`` ("Streaming sweeps and the results store")
for the layering.
"""

from repro.store.keys import spec_fingerprint, spec_key
from repro.store.results import MergeReport, ResultsStore, StoreEntry

__all__ = [
    "MergeReport",
    "ResultsStore",
    "StoreEntry",
    "spec_fingerprint",
    "spec_key",
]
