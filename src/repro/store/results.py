"""Append-only, crash-tolerant results store for sweep checkpointing.

One directory per sweep::

    <dir>/results.jsonl    one JSON line per completed spec (append-only)
    <dir>/manifest.json    atomically-replaced metadata + entry count

``results.jsonl`` is the source of truth: each line carries the spec's
content hash (:func:`~repro.store.keys.spec_key`) and the full
:meth:`RunSummary.to_dict` snapshot, flushed as soon as the run
completes, so a crash loses at most the line being written.  On open the
store re-reads the log, tolerates (and truncates away) a torn final
line, and exposes the completed-key set — the streaming executor skips
those specs and serves their results straight from the store.

The manifest is written with the write-temp-then-``os.replace`` idiom,
so readers never observe a half-written manifest; it is bookkeeping
(entry count, layout version), never the data itself.

Only summary-shaped results are stored: a spec that must travel as a
full collector (``record_events``) re-runs on resume rather than
silently losing its event streams.

Because keys are content hashes of the spec (label and metadata
excluded), stores from *different hosts running the same sweep* agree on
every key — :meth:`ResultsStore.merge` unions such directories
idempotently (last-writer-wins on identical keys, with a
:class:`MergeReport` flagging any whose physics payloads diverge, which
would indicate non-determinism or version skew).  That is what makes
crash/retry across a distributed fleet exactly-once at the results
layer: re-running a spec anywhere produces the same key and the same
payload, so merging is a no-op for it.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Iterator

from repro.errors import SimulationError
from repro.store.keys import spec_key
from repro.telemetry.summary import RunSummary

if TYPE_CHECKING:
    from repro.sim.parallel import RunSpec
    from repro.sim.runner import RunResult

__all__ = ["MergeReport", "ResultsStore", "StoreEntry"]

#: Manifest layout version (independent of the spec-key version).
_STORE_VERSION = 1

#: Refresh the manifest every this many recorded results (plus on close).
_MANIFEST_EVERY = 32

#: Summary-payload keys that are provenance/bookkeeping, not physics:
#: two stores may legitimately disagree on them for the same spec (the
#: spec ran on different hosts, under different sweep labels) without
#: that being a conflict.
_PROVENANCE_KEYS = frozenset(
    {"label", "worker", "worker_retries", "serial_fallback"}
)


def _scan_log(path: str) -> dict[str, dict]:
    """Parse a results log into ``{key: payload}``, later lines winning.

    Same tolerance as :meth:`ResultsStore._load`: a torn or corrupt line
    ends the trustworthy prefix (but this read-only scan never truncates
    the file it reads).
    """
    payloads: dict[str, dict] = {}
    if not os.path.exists(path):
        return payloads
    with open(path, "rb") as fh:
        for raw in fh:
            if not raw.endswith(b"\n"):
                break
            try:
                payload = json.loads(raw)
                key = payload["key"]
                payload["summary"]  # noqa: B018 - presence check
            except (json.JSONDecodeError, KeyError, TypeError):
                break
            payloads[key] = payload
    return payloads


def _physics_diff(a: dict, b: dict) -> list[str]:
    """Summary fields on which two payloads for one key disagree.

    Provenance fields are excluded — only physics counts as divergence.
    """
    fields = (set(a) | set(b)) - _PROVENANCE_KEYS
    return sorted(f for f in fields if a.get(f) != b.get(f))


@dataclass(frozen=True, slots=True)
class MergeReport:
    """Outcome of :meth:`ResultsStore.merge` over one or more sources.

    ``conflicts`` lists ``(spec_key, divergent_fields)`` for entries
    whose *physics* payloads disagreed between stores — on a
    deterministic simulator that indicates version skew between hosts
    (the incoming payload still wins, per last-writer-wins, so the
    merged store is self-consistent either way).
    """

    added: int = 0
    updated: int = 0
    unchanged: int = 0
    conflicts: tuple[tuple[str, tuple[str, ...]], ...] = ()

    @property
    def total(self) -> int:
        return self.added + self.updated + self.unchanged

    def format(self) -> str:
        out = (
            f"merged {self.total} entries: {self.added} added, "
            f"{self.unchanged} already present, {self.updated} updated"
        )
        if self.conflicts:
            lines = [out, f"{len(self.conflicts)} DIVERGENT payload(s):"]
            for key, fields in self.conflicts:
                lines.append(f"  {key}: {', '.join(fields)}")
            return "\n".join(lines)
        return out


@dataclass(frozen=True, slots=True)
class StoreEntry:
    """One stored run, as listed by :meth:`ResultsStore.entries`.

    A cheap inspection view — the identifying fields plus the headline
    counters — without materialising a full :class:`RunSummary`.
    """

    key: str
    label: str
    workload: str
    scheme: str
    seed: int
    commits: int
    execution_cycles: int


class ResultsStore:
    """Checkpoint/resume store for one sweep's completed runs.

    ``fresh=True`` discards any prior contents (a new sweep in a reused
    directory); the default re-reads them so interrupted sweeps resume
    where they died.  Usable as a context manager; :meth:`close` writes
    the final manifest.
    """

    def __init__(self, directory: str, fresh: bool = False) -> None:
        self.directory = str(directory)
        os.makedirs(self.directory, exist_ok=True)
        self.results_path = os.path.join(self.directory, "results.jsonl")
        self.manifest_path = os.path.join(self.directory, "manifest.json")
        self._payloads: dict[str, dict] = {}
        self._since_manifest = 0
        if fresh:
            for path in (self.results_path, self.manifest_path):
                if os.path.exists(path):
                    os.remove(path)
        else:
            self._load()
        self._fh = open(self.results_path, "a", encoding="utf-8")

    # -- loading -------------------------------------------------------------

    def _load(self) -> None:
        """Re-read the log; drop and truncate away a torn final line."""
        if not os.path.exists(self.results_path):
            return
        valid_bytes = 0
        with open(self.results_path, "rb") as fh:
            for raw in fh:
                if not raw.endswith(b"\n"):
                    break  # torn tail: a crash mid-write
                try:
                    payload = json.loads(raw)
                    key = payload["key"]
                    payload["summary"]  # noqa: B018 - presence check
                except (json.JSONDecodeError, KeyError, TypeError):
                    break  # corrupt line: nothing after it is trustworthy
                self._payloads[key] = payload
                valid_bytes += len(raw)
        if valid_bytes < os.path.getsize(self.results_path):
            # Truncate the garbage so the next append starts a clean line.
            with open(self.results_path, "r+b") as fh:
                fh.truncate(valid_bytes)

    # -- interface -----------------------------------------------------------

    def __len__(self) -> int:
        return len(self._payloads)

    def __contains__(self, key: str) -> bool:
        return key in self._payloads

    def completed_keys(self) -> set[str]:
        return set(self._payloads)

    def has_spec(self, spec: "RunSpec") -> bool:
        return spec_key(spec) in self._payloads

    def record(self, spec: "RunSpec", result: "RunResult") -> bool:
        """Persist one completed run; returns False for unstorable results.

        Only summary-shaped stats can round-trip through JSON; a full
        collector (event-recording specs) is not stored, so those specs
        simply re-run on resume.
        """
        if not isinstance(result.stats, RunSummary):
            return False
        key = spec_key(spec)
        payload = {"key": key, "label": spec.label,
                   "summary": result.stats.to_dict()}
        self._append(payload)
        return True

    def _append(self, payload: dict) -> None:
        """Durably append one payload line and index it."""
        line = json.dumps(payload, separators=(",", ":")) + "\n"
        self._fh.write(line)
        self._fh.flush()
        os.fsync(self._fh.fileno())
        self._payloads[payload["key"]] = payload
        self._since_manifest += 1
        if self._since_manifest >= _MANIFEST_EVERY:
            self.write_manifest()

    def merge(self, other_dirs: "list[str] | tuple[str, ...] | str") -> MergeReport:
        """Union other stores' entries into this one, idempotently.

        ``other_dirs`` names store directories (or ``results.jsonl``
        files directly) — per-host checkpoint dirs from a distributed
        sweep, say.  Spec keys are content hashes, so the same spec run
        anywhere lands on the same key:

        * keys this store lacks are appended (``added``);
        * keys whose physics payload matches are skipped (``unchanged``
          — the idempotent case, free re-merge after crash/retry);
        * keys whose physics payload *diverges* are overwritten by the
          incoming entry (last-writer-wins, counted ``updated``) and
          reported in :attr:`MergeReport.conflicts` — on a deterministic
          simulator divergence means version skew between hosts, so it
          is surfaced rather than silently absorbed.

        Appends are durable as they happen (same fsync discipline as
        :meth:`record`), and the manifest is refreshed once at the end.
        """
        if isinstance(other_dirs, str):
            other_dirs = (other_dirs,)
        added = updated = unchanged = 0
        conflicts: list[tuple[str, tuple[str, ...]]] = []
        for source in other_dirs:
            path = str(source)
            if os.path.isdir(path):
                path = os.path.join(path, "results.jsonl")
            if not os.path.exists(path):
                raise SimulationError(f"no results log at {path!r}")
            if os.path.abspath(path) == os.path.abspath(self.results_path):
                continue  # merging a store into itself is a no-op
            for key, payload in _scan_log(path).items():
                mine = self._payloads.get(key)
                if mine is None:
                    self._append(payload)
                    added += 1
                    continue
                diff = _physics_diff(mine["summary"], payload["summary"])
                if not diff:
                    unchanged += 1
                    continue
                conflicts.append((key, tuple(diff)))
                self._append(payload)
                updated += 1
        self.write_manifest()
        return MergeReport(
            added=added,
            updated=updated,
            unchanged=unchanged,
            conflicts=tuple(conflicts),
        )

    def result_for(self, spec: "RunSpec") -> "RunResult":
        """Reconstruct a completed spec's result from the store.

        The stored summary carries the physics; the caller's spec
        supplies the config object (configs are part of the key, so they
        are guaranteed to match) and the current label.
        """
        from repro.sim.runner import RunResult

        key = spec_key(spec)
        payload = self._payloads.get(key)
        if payload is None:
            raise SimulationError(
                f"spec {spec.label!r} ({key}) is not in the results store"
            )
        summary = RunSummary.from_dict(payload["summary"])
        summary.label = spec.label
        return RunResult(
            workload=summary.workload,
            scheme=summary.scheme,
            config=spec.config,
            seed=summary.seed,
            stats=summary,
            violations=summary.violations,
            worker_retries=summary.worker_retries,
            serial_fallback=summary.serial_fallback,
            worker=summary.worker,
        )

    def iter_summaries(self) -> Iterator[RunSummary]:
        """Every stored summary, in insertion order (analysis over a
        finished or partial sweep without re-running anything)."""
        for payload in self._payloads.values():
            yield RunSummary.from_dict(payload["summary"])

    def entries(self) -> list[StoreEntry]:
        """Inspection listing of every stored run, in insertion order."""
        out = []
        for payload in self._payloads.values():
            summary = payload["summary"]
            out.append(
                StoreEntry(
                    key=payload["key"],
                    label=payload.get("label", ""),
                    workload=summary.get("workload", ""),
                    scheme=summary.get("scheme", ""),
                    seed=summary.get("seed", 0),
                    commits=summary.get("txn_commits", 0),
                    execution_cycles=summary.get("execution_cycles", 0),
                )
            )
        return out

    def prune(
        self,
        keep: int | None = None,
        predicate: "Callable[[StoreEntry], bool] | None" = None,
    ) -> int:
        """Drop stored entries and compact the log; returns entries removed.

        ``predicate`` selects which entries survive (True = keep);
        ``keep=N`` then retains only the *last* N survivors (insertion
        order — the N most recently recorded).  With neither argument the
        call is a pure compaction (rewrites the log, drops nothing).

        The rewrite is atomic: survivors are written to a temp file which
        ``os.replace``s the log, so a crash mid-prune leaves either the
        old log or the new one, never a mix.  The append handle is
        reopened on the new file and the manifest refreshed.
        """
        if keep is not None and keep < 0:
            raise ValueError(f"keep must be non-negative, got {keep}")
        survivors = list(self._payloads.values())
        if predicate is not None:
            by_key = {e.key: e for e in self.entries()}
            survivors = [p for p in survivors if predicate(by_key[p["key"]])]
        if keep is not None and len(survivors) > keep:
            survivors = survivors[len(survivors) - keep:] if keep else []
        removed = len(self._payloads) - len(survivors)
        if removed == 0:
            return 0
        self._fh.close()
        tmp = self.results_path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as fh:
            for payload in survivors:
                fh.write(json.dumps(payload, separators=(",", ":")) + "\n")
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, self.results_path)
        self._payloads = {p["key"]: p for p in survivors}
        self._fh = open(self.results_path, "a", encoding="utf-8")
        self.write_manifest()
        return removed

    # -- manifest ------------------------------------------------------------

    def write_manifest(self) -> None:
        """Atomically publish the manifest (write temp, then replace)."""
        manifest = {
            "version": _STORE_VERSION,
            "entries": len(self._payloads),
            "results_file": os.path.basename(self.results_path),
        }
        tmp = self.manifest_path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(manifest, fh, indent=2, sort_keys=True)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, self.manifest_path)
        self._since_manifest = 0

    def read_manifest(self) -> dict | None:
        """The last atomically-published manifest, or None."""
        try:
            with open(self.manifest_path, encoding="utf-8") as fh:
                return json.load(fh)
        except (OSError, json.JSONDecodeError):
            return None

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        if not self._fh.closed:
            self.write_manifest()
            self._fh.close()

    def __enter__(self) -> "ResultsStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
