"""Content-hashed identities for :class:`~repro.sim.parallel.RunSpec`.

A spec's key must be (a) stable across processes and sessions — it is
what lets an interrupted sweep recognise its own completed work — and
(b) sensitive to anything that changes the simulation's *physics*:
workload identity, machine configuration, seed, and the result-shaping
flags.  Presentation-only state (``label``) and the free-form
``metadata`` dict are deliberately excluded, so relabelling a sweep axis
does not invalidate a checkpoint.

Keys are the first 24 hex digits of a SHA-256 over a canonical JSON
encoding (sorted keys, enums by value, dataclasses by field).  Workload
instances hash on their class plus constructor state (``vars()``), the
same identity the compiled-script cache uses; instances whose state is
not JSON-canonicalisable fall back to ``repr`` — stable for the
dataclass-style workloads this repo defines.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
from typing import Any

__all__ = ["spec_fingerprint", "spec_key"]

#: Bump when the fingerprint layout changes, so stale stores never
#: satisfy a resume with results computed under different semantics.
_FINGERPRINT_VERSION = 1


def _canonical(obj: Any) -> Any:
    """Reduce config/workload state to JSON-encodable primitives."""
    if isinstance(obj, enum.Enum):
        return obj.value
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {
            f.name: _canonical(getattr(obj, f.name))
            for f in dataclasses.fields(obj)
        }
    if isinstance(obj, dict):
        return {str(k): _canonical(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_canonical(v) for v in obj]
    if isinstance(obj, (str, int, float, bool)) or obj is None:
        return obj
    return repr(obj)


def _workload_identity(workload) -> Any:
    if isinstance(workload, str):
        return {"registry": workload}
    ident: dict[str, Any] = {
        "class": f"{type(workload).__module__}.{type(workload).__qualname__}",
    }
    try:
        ident["state"] = _canonical(dict(sorted(vars(workload).items())))
    except TypeError:
        ident["state"] = repr(workload)
    return ident


def spec_fingerprint(spec) -> dict[str, Any]:
    """The canonical dict a spec's key hashes (exposed for debugging)."""
    return {
        "version": _FINGERPRINT_VERSION,
        "workload": _workload_identity(spec.workload),
        "config": _canonical(spec.config),
        "seed": spec.seed,
        "txns_per_core": spec.txns_per_core,
        "check_atomicity": spec.check_atomicity,
        "record_events": spec.record_events,
        "record_detail": spec.record_detail,
        "tolerate_violations": spec.tolerate_violations,
        "max_cycles": spec.max_cycles,
    }


def spec_key(spec) -> str:
    """Stable content hash of one spec (24 hex chars)."""
    payload = json.dumps(
        spec_fingerprint(spec), sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:24]
