"""System configuration (the paper's Table II) and HTM policy knobs.

:class:`SystemConfig` fully describes a simulated machine: core count,
cache geometry, latency model, the conflict-detection scheme under test and
its parameters.  Everything the engine does is a pure function of
``(SystemConfig, Workload, seed)``.

The defaults reproduce Table II of the paper::

    Processors   8 AMD Opteron 2.2 GHz out-of-order cores
    L1 DCache    64 KB, 64 B lines, 2-way, 3 cycles load-to-use
    Private L2   512 KB, 16-way, 15 cycles
    Private L3   2 MB, 16-way, 50 cycles
    Main memory  2048 MB, 210 cycles
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace

from repro.errors import ConfigError

__all__ = [
    "CacheConfig",
    "ConflictResolution",
    "DetectionScheme",
    "DetectionTiming",
    "HtmConfig",
    "HtmPolicy",
    "KERNELS",
    "LatencyConfig",
    "LazyArbitration",
    "POLICY_PRESETS",
    "SystemConfig",
    "TABLE2_DESCRIPTION",
    "TelemetryConfig",
    "VersionMgmt",
    "default_system",
]

#: Valid values of :attr:`TelemetryConfig.sink`.
TELEMETRY_SINKS = ("auto", "counters", "detail", "trace")

#: Valid values of :attr:`SystemConfig.kernel`.
KERNELS = ("object", "array", "flat")


class ConflictResolution(enum.Enum):
    """Who aborts when a probe conflicts with a running transaction.

    * ``REQUESTER_WINS`` — ASF's policy (the paper: "the earlier
      conflicting transaction will be aborted"): the probed victim dies,
      the requester proceeds.
    * ``OLDER_WINS`` — age-based: if the victim started earlier, the
      *requester* aborts instead (classic livelock-avoidance policy;
      offered as a design-space ablation).
    * ``STALL_BACKOFF`` — the requester neither kills nor dies: it parks
      in a bounded stall queue and retries the access after a
      deterministic delay (LogTM-style).  Exhausting the per-attempt
      stall budget or overflowing the queue falls back to aborting the
      requester, which guarantees deadlock freedom.
    """

    REQUESTER_WINS = "requester_wins"
    OLDER_WINS = "older_wins"
    STALL_BACKOFF = "stall_backoff"


class VersionMgmt(enum.Enum):
    """Where speculative store values live until commit.

    * ``LAZY`` — ASF's write buffering: stores collect in a redo log and
      publish at commit (abort discards the log).
    * ``EAGER`` — LogTM-style in-place update: stores publish to memory
      immediately and record the overwritten value in an undo log
      (commit discards the log, abort rolls it back).  Requires eager
      conflict detection — in-place speculative values must never be
      visible to transactions that could still commit around them.
    """

    EAGER = "eager"
    LAZY = "lazy"


class DetectionTiming(enum.Enum):
    """When conflicts are detected.

    * ``EAGER`` — at access time, on coherence probes (ASF).
    * ``LAZY`` — at commit time: probes never abort anyone; the
      committer value-validates its read set and (policy permitting)
      arbitrates against still-running transactions.
    """

    EAGER = "eager"
    LAZY = "lazy"


class LazyArbitration(enum.Enum):
    """How a lazy-detection commit treats overlapping running transactions.

    * ``COMMITTER_WINS`` — the committer aborts every running transaction
      whose speculative footprint overlaps its write set (TCC-style).
    * ``POLITE`` — the committer publishes and leaves the others alone;
      doomed readers discover the overwrite when their own commit-time
      validation fails.
    """

    COMMITTER_WINS = "committer_wins"
    POLITE = "polite"


@dataclass(frozen=True, slots=True)
class HtmPolicy:
    """One point of the HTM design-space matrix (gem5-style axes).

    The default instance *is* AMD ASF: lazy versioning, eager
    line-granular detection, requester-wins resolution.  Every other
    combination is a design-space excursion the engine runs through the
    same three kernels.  The stall knobs only matter under
    ``ConflictResolution.STALL_BACKOFF``; ``lazy_arbitration`` only
    under ``DetectionTiming.LAZY``.

    * ``stall_cycles`` — base retry delay for one stall (scaled by how
      many cores are already queued, which breaks symmetric livelock
      deterministically without consuming RNG draws).
    * ``stall_limit`` — stalls one transaction attempt may take before
      the deadlock-avoidance fallback aborts the requester.
    * ``stall_queue_depth`` — machine-wide bound on simultaneously
      stalled cores; overflow also falls back to a requester abort.
    """

    version_mgmt: VersionMgmt = VersionMgmt.LAZY
    conflict_detection: DetectionTiming = DetectionTiming.EAGER
    resolution: ConflictResolution = ConflictResolution.REQUESTER_WINS
    lazy_arbitration: LazyArbitration = LazyArbitration.COMMITTER_WINS
    stall_cycles: int = 24
    stall_limit: int = 8
    stall_queue_depth: int = 4

    def __post_init__(self) -> None:
        if (
            self.version_mgmt is VersionMgmt.EAGER
            and self.conflict_detection is DetectionTiming.LAZY
        ):
            raise ConfigError(
                "eager version management requires eager conflict detection "
                "(in-place speculative values must not survive undetected)"
            )
        if self.stall_cycles <= 0:
            raise ConfigError("stall_cycles must be positive")
        if self.stall_limit <= 0:
            raise ConfigError("stall_limit must be positive")
        if self.stall_queue_depth <= 0:
            raise ConfigError("stall_queue_depth must be positive")

    @property
    def is_asf(self) -> bool:
        """Whether this point reproduces the paper's ASF regime."""
        return (
            self.version_mgmt is VersionMgmt.LAZY
            and self.conflict_detection is DetectionTiming.EAGER
            and self.resolution is ConflictResolution.REQUESTER_WINS
        )

    def describe(self) -> str:
        """Compact ``vm/cd/res`` label used by sweeps and reports."""
        out = (
            f"{self.version_mgmt.value}-vm/"
            f"{self.conflict_detection.value}-cd/"
            f"{self.resolution.value}"
        )
        if self.conflict_detection is DetectionTiming.LAZY:
            out += f"/{self.lazy_arbitration.value}"
        return out


#: Named policy points offered by the CLI's ``--policy`` flag.  ``asf``
#: is the paper's regime (and the config default); ``eager`` is a
#: LogTM-style eager/eager point; ``lazy`` a TCC-style lazy/lazy point.
POLICY_PRESETS: dict[str, HtmPolicy] = {
    "asf": HtmPolicy(),
    "eager": HtmPolicy(version_mgmt=VersionMgmt.EAGER),
    "lazy": HtmPolicy(conflict_detection=DetectionTiming.LAZY),
}


class DetectionScheme(enum.Enum):
    """Which conflict detector the HTM uses.

    * ``ASF_BASELINE`` — line-granular SR/SW bits (the paper's baseline).
    * ``SUBBLOCK``     — the paper's contribution: per-sub-block SPEC/WR
      state with dirty handling (Section IV).
    * ``PERFECT``      — byte-granular detection, zero false conflicts (the
      paper's ideal upper bound).
    * ``DECOUPLED``    — the Section II related work (SpMT/DPTM-style
      coherence decoupling): WAR false conflicts tolerated via lazy
      commit-time validation; RAW/WAW handled like the baseline.
    """

    ASF_BASELINE = "asf"
    SUBBLOCK = "subblock"
    PERFECT = "perfect"
    DECOUPLED = "decoupled"


@dataclass(frozen=True, slots=True)
class CacheConfig:
    """Geometry of one cache level."""

    size_bytes: int
    line_size: int
    associativity: int
    load_to_use_cycles: int

    def __post_init__(self) -> None:
        if self.line_size <= 0 or (self.line_size & (self.line_size - 1)) != 0:
            raise ConfigError(f"line size must be a power of two, got {self.line_size}")
        if self.size_bytes % (self.line_size * self.associativity) != 0:
            raise ConfigError(
                f"cache of {self.size_bytes} B cannot be organised as "
                f"{self.associativity}-way with {self.line_size} B lines"
            )
        if self.load_to_use_cycles < 0:
            raise ConfigError("latency must be non-negative")

    @property
    def n_lines(self) -> int:
        return self.size_bytes // self.line_size

    @property
    def n_sets(self) -> int:
        return self.n_lines // self.associativity


@dataclass(frozen=True, slots=True)
class LatencyConfig:
    """Load-to-use latencies in core cycles (Table II) plus derived costs.

    ``cache_to_cache`` is the cost of servicing a miss from a remote L1 via
    the coherence fabric; PTLsim models it near the L3 latency, we follow.
    ``non_mem_op`` is the cost charged per non-memory work unit between
    accesses (the three-wide core retires several instructions per cycle;
    workloads express computation directly in cycles).
    """

    l1_hit: int = 3
    l2_hit: int = 15
    l3_hit: int = 50
    memory: int = 210
    cache_to_cache: int = 60
    non_mem_op: int = 1
    commit_overhead: int = 6
    abort_overhead: int = 20
    txn_begin_overhead: int = 4

    def __post_init__(self) -> None:
        for name in (
            "l1_hit",
            "l2_hit",
            "l3_hit",
            "memory",
            "cache_to_cache",
            "non_mem_op",
            "commit_overhead",
            "abort_overhead",
            "txn_begin_overhead",
        ):
            if getattr(self, name) < 0:
                raise ConfigError(f"latency {name} must be non-negative")
        if not self.l1_hit <= self.l2_hit <= self.l3_hit <= self.memory:
            raise ConfigError("latencies must be monotone up the hierarchy")


@dataclass(frozen=True, slots=True)
class HtmConfig:
    """HTM policy parameters.

    ``n_subblocks`` only matters for ``DetectionScheme.SUBBLOCK``; the paper
    evaluates {2, 4, 8, 16} and defaults to 4.  ``dirty_state_enabled``
    exists for the ablation of Section IV-C — disabling it reintroduces the
    Figure 6 atomicity hazard, which the checker then detects.
    """

    scheme: DetectionScheme = DetectionScheme.ASF_BASELINE
    n_subblocks: int = 4
    dirty_state_enabled: bool = True
    # Ablation knob for the Section IV-D-2 rule: abort a remote
    # speculative writer on any invalidating probe to its line, even
    # without sub-block overlap (True = the implementable hardware; False
    # = idealised, quantifies what the accepted WAW false conflicts cost).
    forced_waw_abort: bool = True
    policy: HtmPolicy = field(default_factory=HtmPolicy)
    backoff_base_cycles: int = 64
    backoff_cap_cycles: int = 8192
    backoff_jitter: float = 0.5
    max_retries: int | None = None

    @property
    def resolution(self) -> ConflictResolution:
        """The policy's resolution axis (the machines' hot-path read)."""
        return self.policy.resolution

    def __post_init__(self) -> None:
        if self.n_subblocks <= 0:
            raise ConfigError(f"n_subblocks must be positive, got {self.n_subblocks}")
        if self.backoff_base_cycles <= 0:
            raise ConfigError("backoff base must be positive")
        if self.backoff_cap_cycles < self.backoff_base_cycles:
            raise ConfigError("backoff cap must be >= base")
        if not 0.0 <= self.backoff_jitter <= 1.0:
            raise ConfigError("backoff jitter must be in [0, 1]")
        if self.max_retries is not None and self.max_retries < 0:
            raise ConfigError("max_retries must be None or >= 0")


@dataclass(frozen=True, slots=True)
class TelemetryConfig:
    """How a run's events are consumed (see :mod:`repro.telemetry`).

    * ``sink="auto"`` — the caller's ``record_detail``/``record_events``
      flags decide (the default, and the pre-telemetry behaviour);
    * ``"counters"`` — force the counter-only fast path;
    * ``"detail"`` — force the full-detail collector;
    * ``"trace"`` — full detail plus a JSONL event trace written to
      ``trace_path`` (required).  ``trace_accesses`` additionally streams
      the per-access events, which dominate trace volume.

    ``trace_path`` may also be set with ``sink="auto"``/``"detail"`` to
    trace without changing collector selection.
    """

    sink: str = "auto"
    trace_path: str | None = None
    trace_accesses: bool = False

    def __post_init__(self) -> None:
        if self.sink not in TELEMETRY_SINKS:
            raise ConfigError(
                f"telemetry sink must be one of {TELEMETRY_SINKS}, got {self.sink!r}"
            )
        if self.sink == "trace" and self.trace_path is None:
            raise ConfigError("telemetry sink 'trace' requires trace_path")


@dataclass(frozen=True, slots=True)
class SystemConfig:
    """Complete description of a simulated machine + HTM scheme."""

    n_cores: int = 8
    l1: CacheConfig = field(
        default_factory=lambda: CacheConfig(
            size_bytes=64 * 1024, line_size=64, associativity=2, load_to_use_cycles=3
        )
    )
    l2: CacheConfig = field(
        default_factory=lambda: CacheConfig(
            size_bytes=512 * 1024, line_size=64, associativity=16, load_to_use_cycles=15
        )
    )
    l3: CacheConfig = field(
        default_factory=lambda: CacheConfig(
            size_bytes=2 * 1024 * 1024,
            line_size=64,
            associativity=16,
            load_to_use_cycles=50,
        )
    )
    latency: LatencyConfig = field(default_factory=LatencyConfig)
    htm: HtmConfig = field(default_factory=HtmConfig)
    telemetry: TelemetryConfig = field(default_factory=TelemetryConfig)
    track_values: bool = True
    # Which machine implementation the engine builds: "flat" (default)
    # is the struct-of-arrays kernel plus the flat transactional runtime
    # (recycled per-core txn views, inlined commit); "array" the same
    # arrays with per-attempt Transaction objects; "object" the per-line
    # object model both mirror bit-for-bit.  All three produce identical
    # telemetry — the kernel-parity suite asserts it.
    kernel: str = "flat"

    def __post_init__(self) -> None:
        if self.n_cores <= 0:
            raise ConfigError(f"n_cores must be positive, got {self.n_cores}")
        if self.kernel not in KERNELS:
            raise ConfigError(f"kernel must be one of {KERNELS}, got {self.kernel!r}")
        if not (self.l1.line_size == self.l2.line_size == self.l3.line_size):
            raise ConfigError("all cache levels must share one line size")
        if self.htm.scheme is DetectionScheme.SUBBLOCK:
            if self.l1.line_size % self.htm.n_subblocks != 0:
                raise ConfigError(
                    f"{self.l1.line_size} B line cannot hold "
                    f"{self.htm.n_subblocks} equal sub-blocks"
                )

    @property
    def line_size(self) -> int:
        return self.l1.line_size

    @property
    def subblock_size(self) -> int:
        """Bytes per sub-block under the configured scheme (line size for
        the baseline, one byte conceptually for the perfect system)."""
        if self.htm.scheme is DetectionScheme.SUBBLOCK:
            return self.line_size // self.htm.n_subblocks
        if self.htm.scheme is DetectionScheme.PERFECT:
            return 1
        return self.line_size

    def with_scheme(
        self, scheme: DetectionScheme, n_subblocks: int | None = None
    ) -> "SystemConfig":
        """A copy of this config running a different detector (same machine)."""
        htm = replace(
            self.htm,
            scheme=scheme,
            n_subblocks=self.htm.n_subblocks if n_subblocks is None else n_subblocks,
        )
        return replace(self, htm=htm)

    def with_telemetry(self, **overrides) -> "SystemConfig":
        """A copy with telemetry fields overridden (same machine)."""
        return replace(self, telemetry=replace(self.telemetry, **overrides))

    def with_kernel(self, kernel: str) -> "SystemConfig":
        """A copy running on a different machine kernel (same semantics)."""
        return replace(self, kernel=kernel)

    def with_policy(
        self, policy: HtmPolicy | None = None, **overrides
    ) -> "SystemConfig":
        """A copy running a different HTM policy point (same machine).

        Pass a whole :class:`HtmPolicy`, field overrides, or both (the
        overrides apply on top of the given policy).
        """
        base = self.htm.policy if policy is None else policy
        if overrides:
            base = replace(base, **overrides)
        return replace(self, htm=replace(self.htm, policy=base))

    def describe(self) -> str:
        """Human-readable machine description (regenerates Table II)."""
        lines = [
            f"Processors      {self.n_cores} out-of-order cores",
            f"L1 DCache       {self.l1.size_bytes // 1024}KB, {self.l1.line_size}B lines, "
            f"{self.l1.associativity}-way, {self.l1.load_to_use_cycles} cycles load-to-use",
            f"Private L2      {self.l2.size_bytes // 1024}KB, {self.l2.associativity}-way, "
            f"{self.l2.load_to_use_cycles} cycles load-to-use",
            f"Private L3      {self.l3.size_bytes // 1024 // 1024}MB, {self.l3.associativity}-way, "
            f"{self.l3.load_to_use_cycles} cycles load-to-use",
            f"Main memory     {self.latency.memory} cycles load-to-use",
            f"HTM scheme      {self.htm.scheme.value}"
            + (
                f" ({self.htm.n_subblocks} sub-blocks of {self.subblock_size}B)"
                if self.htm.scheme is DetectionScheme.SUBBLOCK
                else ""
            ),
            f"HTM policy      {self.htm.policy.describe()}",
        ]
        return "\n".join(lines)


TABLE2_DESCRIPTION = SystemConfig().describe()
"""The default machine, rendered — used by the Table II benchmark."""


def default_system(
    scheme: DetectionScheme = DetectionScheme.ASF_BASELINE,
    n_subblocks: int = 4,
    **overrides,
) -> SystemConfig:
    """The paper's Table II machine with the requested detection scheme."""
    cfg = SystemConfig(**overrides)
    return cfg.with_scheme(scheme, n_subblocks)
