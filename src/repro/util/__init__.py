"""Shared low-level utilities: bit manipulation, deterministic RNG streams,
interval math, and ASCII table rendering.

These helpers are deliberately free of any simulator state so they can be
property-tested in isolation and reused by every subsystem.
"""

from repro.util.bitops import (
    bit_count,
    byte_mask,
    iter_set_bits,
    lowest_set_bit,
    mask_covers,
    mask_to_ranges,
    masks_overlap,
    reduce_mask,
    spread_mask,
)
from repro.util.intervals import ByteInterval, intervals_overlap, merge_intervals
from repro.util.rng import DeterministicRng, derive_seed
from repro.util.tables import format_series, format_table, percent

__all__ = [
    "ByteInterval",
    "DeterministicRng",
    "bit_count",
    "byte_mask",
    "derive_seed",
    "format_series",
    "format_table",
    "intervals_overlap",
    "iter_set_bits",
    "lowest_set_bit",
    "mask_covers",
    "mask_to_ranges",
    "masks_overlap",
    "merge_intervals",
    "percent",
    "reduce_mask",
    "spread_mask",
]
