"""Deterministic random-number streams.

Every stochastic component of the simulator (workload generators, backoff
jitter, interleaving noise) draws from its own named sub-stream derived from
the experiment's master seed.  That way adding randomness to one component
never perturbs another, and a run is reproducible from ``(seed,)`` alone —
the property the determinism tests assert.
"""

from __future__ import annotations

import bisect
import hashlib
import math
import random
from collections.abc import Sequence
from typing import TypeVar

__all__ = ["DeterministicRng", "derive_seed"]

T = TypeVar("T")


def derive_seed(master: int, *labels: object) -> int:
    """Derive a 64-bit child seed from a master seed and a label path.

    Uses BLAKE2b so the mapping is stable across Python versions and
    processes (``hash()`` is salted per-process and unusable here).
    """
    h = hashlib.blake2b(digest_size=8)
    h.update(str(int(master)).encode())
    for label in labels:
        h.update(b"/")
        h.update(str(label).encode())
    return int.from_bytes(h.digest(), "little")


class DeterministicRng:
    """A seeded RNG with the shaped draws used by the workload layer.

    Thin wrapper over :class:`random.Random`; exists so the rest of the code
    never touches global random state and so common distributions (zipf,
    bounded geometric) live in one tested place.
    """

    def __init__(self, seed: int) -> None:
        self.seed = int(seed)
        self._rng = random.Random(self.seed)
        self._zipf_cache: dict[tuple[int, float], list[float]] = {}

    def child(self, *labels: object) -> "DeterministicRng":
        """A new independent stream for a named sub-component."""
        return DeterministicRng(derive_seed(self.seed, *labels))

    # -- primitive draws ---------------------------------------------------

    def randint(self, lo: int, hi: int) -> int:
        """Uniform integer in ``[lo, hi]`` inclusive."""
        return self._rng.randint(lo, hi)

    def random(self) -> float:
        return self._rng.random()

    def chance(self, p: float) -> bool:
        """True with probability ``p``."""
        if p <= 0.0:
            return False
        if p >= 1.0:
            return True
        return self._rng.random() < p

    def choice(self, seq: Sequence[T]) -> T:
        return self._rng.choice(seq)

    def shuffle(self, items: list) -> None:
        self._rng.shuffle(items)

    def sample(self, seq: Sequence[T], k: int) -> list[T]:
        return self._rng.sample(seq, k)

    # -- shaped draws ------------------------------------------------------

    def geometric(self, mean: float, cap: int | None = None) -> int:
        """Geometric draw with the given mean (support starts at 1).

        Used for transaction lengths and inter-transaction gaps.
        """
        if mean < 1.0:
            raise ValueError(f"geometric mean must be >= 1, got {mean}")
        p = 1.0 / mean
        if p >= 1.0:
            return 1
        u = self._rng.random()
        n = int(math.log(max(u, 1e-300)) / math.log(1.0 - p)) + 1
        if cap is not None:
            n = min(n, cap)
        return max(1, n)

    def zipf_index(self, n: int, s: float = 1.0) -> int:
        """Zipf-distributed index in ``[0, n)``.

        Implemented by inverse CDF over the truncated harmonic weights; the
        CDF is cached per ``(n, s)`` because workloads draw from the same
        population millions of times.
        """
        if n <= 0:
            raise ValueError("population must be non-empty")
        key = (n, float(s))
        cdf = self._zipf_cache.get(key)
        if cdf is None:
            weights = [1.0 / ((i + 1) ** s) for i in range(n)]
            total = sum(weights)
            acc = 0.0
            cdf = []
            for w in weights:
                acc += w / total
                cdf.append(acc)
            cdf[-1] = 1.0
            self._zipf_cache[key] = cdf
        return bisect.bisect_left(cdf, self._rng.random())
