"""ASCII rendering for the figure/table harness.

The paper's evaluation artifacts are bar charts and line plots; we
regenerate them as aligned text tables and series so the benchmark harness
can print the same rows/series the paper reports without a plotting
dependency.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

__all__ = ["format_series", "format_table", "percent", "spark"]

_BLOCKS = " ▁▂▃▄▅▆▇█"


def percent(value: float, digits: int = 1) -> str:
    """Render a ratio as a percentage string: ``percent(0.564) -> '56.4%'``."""
    return f"{value * 100:.{digits}f}%"


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render a left-aligned ASCII table with a separator under the header."""
    cells = [[str(h) for h in headers]] + [[str(c) for c in row] for row in rows]
    widths = [max(len(r[i]) for r in cells) for i in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.ljust(w) for h, w in zip(cells[0], widths))
    lines.append(header_line)
    lines.append("  ".join("-" * w for w in widths))
    for row in cells[1:]:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def spark(values: Sequence[float]) -> str:
    """Unicode sparkline for a numeric series (empty-safe)."""
    if not values:
        return ""
    lo = min(values)
    hi = max(values)
    span = hi - lo
    if span <= 0:
        return _BLOCKS[4] * len(values)
    out = []
    for v in values:
        idx = int((v - lo) / span * (len(_BLOCKS) - 1))
        out.append(_BLOCKS[idx])
    return "".join(out)


def format_series(
    series: Mapping[str, Sequence[float]],
    title: str | None = None,
    width: int = 60,
) -> str:
    """Render named numeric series as sparklines with min/max annotations.

    Series longer than ``width`` are downsampled by bucket means so the
    output stays terminal-friendly.
    """
    lines = []
    if title:
        lines.append(title)
    name_w = max((len(n) for n in series), default=0)
    for name, values in series.items():
        vals = list(values)
        if len(vals) > width:
            step = len(vals) / width
            buckets = []
            for i in range(width):
                lo_i = int(i * step)
                hi_i = max(lo_i + 1, int((i + 1) * step))
                chunk = vals[lo_i:hi_i]
                buckets.append(sum(chunk) / len(chunk))
            vals = buckets
        lo = min(vals) if vals else 0.0
        hi = max(vals) if vals else 0.0
        lines.append(f"{name.ljust(name_w)}  {spark(vals)}  [{lo:.3g} .. {hi:.3g}]")
    return "\n".join(lines)
