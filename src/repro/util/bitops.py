"""Bit-mask helpers used throughout the simulator.

The speculative footprint of a memory access inside one cache line is
represented as an integer *byte mask*: bit ``i`` is set when byte ``i`` of
the line is touched.  Cache lines are 64 bytes in the evaluated machine, so
masks fit comfortably in a native int, and mask intersection (the heart of
conflict classification) is a single ``&``.

Sub-block state is represented the same way at a coarser granularity: an
N-bit mask with one bit per sub-block.  :func:`reduce_mask` converts a byte
mask into its sub-block mask and :func:`spread_mask` goes the other way.
"""

from __future__ import annotations

from collections.abc import Iterator
from functools import lru_cache

#: Cache bound for the memoized mask conversions.  Masks are drawn from
#: the (small) set of distinct access footprints a workload generates, so
#: in practice the caches stay far below this; the bound only guards
#: against adversarial mask streams growing memory without limit.
_MASK_CACHE_SIZE = 1 << 16

__all__ = [
    "bit_count",
    "byte_mask",
    "iter_set_bits",
    "lowest_set_bit",
    "mask_covers",
    "mask_to_ranges",
    "masks_overlap",
    "reduce_mask",
    "spread_mask",
]


@lru_cache(maxsize=_MASK_CACHE_SIZE)
def _byte_mask_cached(offset: int, size: int, line_size: int) -> int:
    if size <= 0:
        raise ValueError(f"access size must be positive, got {size}")
    if offset < 0 or offset + size > line_size:
        raise ValueError(
            f"access [{offset}, {offset + size}) does not fit in a "
            f"{line_size}-byte line"
        )
    return ((1 << size) - 1) << offset


def byte_mask(offset: int, size: int, line_size: int = 64) -> int:
    """Return the byte mask for an access of ``size`` bytes at ``offset``.

    The access must lie entirely within a single line; callers split
    line-crossing accesses before building masks.  Results are memoized
    per ``(offset, size, line_size)`` — the hot per-access path recomputes
    the same handful of masks millions of times.

    >>> bin(byte_mask(0, 4))
    '0b1111'
    >>> bin(byte_mask(6, 2))
    '0b11000000'
    """
    return _byte_mask_cached(offset, size, line_size)


def masks_overlap(a: int, b: int) -> bool:
    """True when two footprints share at least one byte (or sub-block)."""
    return (a & b) != 0


def mask_covers(outer: int, inner: int) -> bool:
    """True when every bit of ``inner`` is also set in ``outer``."""
    return (inner & ~outer) == 0


def bit_count(mask: int) -> int:
    """Number of set bits (bytes / sub-blocks touched)."""
    return mask.bit_count()


def lowest_set_bit(mask: int) -> int:
    """Index of the least significant set bit; -1 for an empty mask."""
    if mask == 0:
        return -1
    return (mask & -mask).bit_length() - 1


def iter_set_bits(mask: int) -> Iterator[int]:
    """Yield the indices of set bits from least to most significant."""
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low


@lru_cache(maxsize=_MASK_CACHE_SIZE)
def _reduce_mask_cached(mask: int, line_size: int, n_blocks: int) -> int:
    if n_blocks <= 0 or line_size % n_blocks != 0:
        raise ValueError(
            f"line of {line_size} bytes cannot be split into {n_blocks} sub-blocks"
        )
    block_size = line_size // n_blocks
    block_full = (1 << block_size) - 1
    out = 0
    for j in range(n_blocks):
        if mask & (block_full << (j * block_size)):
            out |= 1 << j
    return out


def reduce_mask(mask: int, line_size: int, n_blocks: int) -> int:
    """Collapse a byte mask to an ``n_blocks``-bit sub-block mask.

    Sub-block ``j`` is set when any byte in
    ``[j * line_size / n_blocks, (j + 1) * line_size / n_blocks)`` is set.
    Memoized per ``(mask, line_size, n_blocks)``: the sub-blocking
    detector reduces the same access footprints on every record/probe.

    >>> bin(reduce_mask(0b1111, 64, 4))        # bytes 0..3 -> sub-block 0
    '0b1'
    >>> bin(reduce_mask(1 << 63, 64, 4))       # byte 63 -> sub-block 3
    '0b1000'
    """
    return _reduce_mask_cached(mask, line_size, n_blocks)


@lru_cache(maxsize=_MASK_CACHE_SIZE)
def _spread_mask_cached(block_mask: int, line_size: int, n_blocks: int) -> int:
    if n_blocks <= 0 or line_size % n_blocks != 0:
        raise ValueError(
            f"line of {line_size} bytes cannot be split into {n_blocks} sub-blocks"
        )
    block_size = line_size // n_blocks
    block_full = (1 << block_size) - 1
    out = 0
    for j in iter_set_bits(block_mask):
        if j >= n_blocks:
            raise ValueError(
                f"sub-block index {j} out of range for {n_blocks} sub-blocks"
            )
        out |= block_full << (j * block_size)
    return out


def spread_mask(block_mask: int, line_size: int, n_blocks: int) -> int:
    """Expand a sub-block mask back into the byte mask it covers.

    Inverse-ish of :func:`reduce_mask`: ``spread(reduce(m))`` covers ``m``.
    Memoized like :func:`reduce_mask`.
    """
    return _spread_mask_cached(block_mask, line_size, n_blocks)


def mask_to_ranges(mask: int) -> list[tuple[int, int]]:
    """Decompose a mask into maximal ``(start, length)`` runs of set bits.

    >>> mask_to_ranges(0b1111)
    [(0, 4)]
    >>> mask_to_ranges(0b1100_0011)
    [(0, 2), (6, 2)]
    """
    ranges: list[tuple[int, int]] = []
    bit = 0
    while mask:
        if mask & 1:
            start = bit
            length = 0
            while mask & 1:
                mask >>= 1
                bit += 1
                length += 1
            ranges.append((start, length))
        else:
            mask >>= 1
            bit += 1
    return ranges
