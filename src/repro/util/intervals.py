"""Byte-interval helpers.

Mostly a readability layer over raw ``(offset, size)`` tuples: workload
generators describe record fields as intervals, the memory layer turns them
into bit masks (:mod:`repro.util.bitops`).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ByteInterval", "intervals_overlap", "merge_intervals"]


@dataclass(frozen=True, slots=True)
class ByteInterval:
    """A half-open byte range ``[start, start + size)``."""

    start: int
    size: int

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ValueError(f"interval size must be positive, got {self.size}")
        if self.start < 0:
            raise ValueError(f"interval start must be >= 0, got {self.start}")

    @property
    def end(self) -> int:
        """One past the last byte."""
        return self.start + self.size

    def overlaps(self, other: "ByteInterval") -> bool:
        return self.start < other.end and other.start < self.end

    def contains(self, other: "ByteInterval") -> bool:
        return self.start <= other.start and other.end <= self.end

    def shifted(self, delta: int) -> "ByteInterval":
        return ByteInterval(self.start + delta, self.size)


def intervals_overlap(a: ByteInterval, b: ByteInterval) -> bool:
    """Symmetric overlap test (module-level for functional call sites)."""
    return a.overlaps(b)


def merge_intervals(intervals: list[ByteInterval]) -> list[ByteInterval]:
    """Coalesce overlapping/adjacent intervals into a minimal sorted list."""
    if not intervals:
        return []
    ordered = sorted(intervals, key=lambda iv: iv.start)
    merged: list[ByteInterval] = [ordered[0]]
    for iv in ordered[1:]:
        last = merged[-1]
        if iv.start <= last.end:
            if iv.end > last.end:
                merged[-1] = ByteInterval(last.start, iv.end - last.start)
        else:
            merged.append(iv)
    return merged
