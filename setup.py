"""Setup shim.

The build environment for this repository is fully offline and has no
``wheel`` package, so PEP 517 editable installs (which require
``bdist_wheel`` for metadata generation) fail.  Keeping a classic
``setup.py`` alongside ``pyproject.toml`` lets ``pip install -e .`` fall
back to the legacy ``setup.py develop`` path, which works offline.
All project metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
