#!/usr/bin/env python
"""Why the Dirty state exists: an executable version of the paper's
Figure 6 correctness argument.

Sub-blocking forwards data from speculatively written lines (that is the
point — non-overlapping sub-blocks shouldn't conflict), so a consumer can
hold a copy whose other sub-blocks contain a remote transaction's
uncommitted values.  The Dirty state marks those sub-blocks and forces a
re-probe before use.

This script runs the same contended workload on the sub-blocking system
twice — dirty handling on, then off (ablation) — with the serializability
checker collecting violations, and then replays the two scripted Figure 6
hazards step by step.

Run:  python examples/atomicity_audit.py
"""

from dataclasses import replace

from repro import DetectionScheme, default_system
from repro.htm.machine import HtmMachine
from repro.htm.txn import TxnStatus
from repro.sim.atomicity import AtomicityChecker
from repro.sim.engine import SimulationEngine
from repro.workloads.synthetic import SyntheticWorkload

LINE = 0x9000


def machine_with_checker(dirty_enabled: bool) -> HtmMachine:
    cfg = default_system(DetectionScheme.SUBBLOCK, 4)
    cfg = replace(cfg, htm=replace(cfg.htm, dirty_state_enabled=dirty_enabled))
    machine = HtmMachine(cfg)
    machine.checker = AtomicityChecker(
        tokens=machine.tokens, versions=machine.versions,
        raise_on_violation=False,
    )
    return machine


def figure6a(dirty_enabled: bool) -> str:
    """T0 speculatively writes sub-block 0; T1 reads sub-block 2, then
    reads sub-block 0 from its own cached copy."""
    m = machine_with_checker(dirty_enabled)
    t0 = m.new_txn(0, 0, (), 1, 0)
    m.begin_txn(0, t0)
    m.access(0, LINE, 8, True, 0)  # T0 writes sub-block 0

    t1 = m.new_txn(1, 1, (), 1, 1)
    m.begin_txn(1, t1)
    m.access(1, LINE + 32, 8, False, 1)  # T1 reads sub-block 2: no conflict
    out = m.access(1, LINE, 8, False, 2)  # T1 reads T0's sub-block!

    if out.dirty_reprobe and t0.status is TxnStatus.ABORTED:
        return "dirty re-probe fired, writer aborted, reader sees clean data"
    if m.checker.violations:
        return f"HAZARD: {m.checker.violations[0].detail}"
    return "no probe, no violation detected (unexpected)"


def figure6b(dirty_enabled: bool) -> str:
    """T0 aborts after T1 fetched the line with T0's speculative data."""
    m = machine_with_checker(dirty_enabled)
    t0 = m.new_txn(0, 0, (), 1, 0)
    m.begin_txn(0, t0)
    m.access(0, LINE, 8, True, 0)

    t1 = m.new_txn(1, 1, (), 1, 1)
    m.begin_txn(1, t1)
    m.access(1, LINE + 32, 8, False, 1)

    from repro.htm.txn import AbortCause

    m.abort_self(0, 2, AbortCause.USER)  # T0 aborts; its value is garbage
    m.access(1, LINE, 8, False, 3)  # T1 reads the affected sub-block

    if m.checker.violations:
        return f"HAZARD: {m.checker.violations[0].detail}"
    return "re-probe refetched committed data — correct value consumed"


def workload_audit(dirty_enabled: bool):
    cfg = default_system(DetectionScheme.SUBBLOCK, 4)
    cfg = replace(cfg, htm=replace(cfg.htm, dirty_state_enabled=dirty_enabled))
    w = SyntheticWorkload(
        txns_per_core=60, n_records=32, field_bytes=8, record_bytes=8,
        reads_per_txn=(3, 6), writes_per_txn=(1, 3),
        hot_fraction=0.6, zipf_s=0.9, gap_mean=40,
    )
    scripts = w.build(cfg.n_cores, 1)
    engine = SimulationEngine(cfg, scripts, seed=1, check_atomicity=True)
    engine.checker.raise_on_violation = False
    engine.run()
    return engine.checker.violations


def main() -> None:
    print("== Scripted Figure 6(a): RAW conflict hidden by a local hit ==")
    print(f"  dirty ON : {figure6a(True)}")
    print(f"  dirty OFF: {figure6a(False)}")
    print()
    print("== Scripted Figure 6(b): consuming an aborted writer's value ==")
    print(f"  dirty ON : {figure6b(True)}")
    print(f"  dirty OFF: {figure6b(False)}")
    print()
    print("== Whole-workload audit (contended synthetic, 480 txns) ==")
    on = workload_audit(True)
    off = workload_audit(False)
    print(f"  dirty ON : {len(on)} atomicity violations")
    print(f"  dirty OFF: {len(off)} atomicity violations")
    if off:
        print(f"    e.g. {off[0].detail}")
    print()
    print("Conclusion: the Section IV-C dirty state is load-bearing — "
          "without it,\nsub-blocking silently breaks transactional atomicity.")


if __name__ == "__main__":
    main()
