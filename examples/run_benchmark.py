#!/usr/bin/env python
"""Run one Table III benchmark under all three systems and compare.

This is the programmatic equivalent of ``repro-asf run <benchmark>``:
compile the seeded workload once, execute it under baseline ASF,
sub-blocking (N=4) and the perfect system, and report the paper's
headline metrics.

Run:  python examples/run_benchmark.py [benchmark] [txns_per_core]
      python examples/run_benchmark.py vacation 200
"""

import sys

from repro import compare_systems, get_workload
from repro.util.tables import format_table, percent


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "vacation"
    txns = int(sys.argv[2]) if len(sys.argv) > 2 else 200

    workload = get_workload(name, txns_per_core=txns)
    print(f"Running {name} ({workload.info.description}) — "
          f"{txns} transactions/core on 8 cores, three systems...\n")

    results = compare_systems(workload, seed=1)
    base = results["asf"]

    rows = []
    for key, label in (("asf", "baseline ASF"), ("subblock", "sub-block N=4"),
                       ("perfect", "perfect")):
        res = results[key]
        s = res.stats
        rows.append((
            label,
            s.txn_commits,
            s.conflicts.total,
            s.conflicts.total_false,
            percent(s.conflicts.false_rate),
            f"{s.avg_retries:.2f}",
            s.execution_cycles,
            percent(res.speedup_over(base)),
        ))
    print(format_table(
        ("system", "commits", "conflicts", "false", "false rate",
         "retries", "cycles", "improvement"),
        rows,
    ))

    sub = results["subblock"]
    print()
    print(f"False conflicts eliminated by sub-blocking: "
          f"{percent(sub.false_reduction_over(base))}")
    print(f"Overall conflicts removed:                 "
          f"{percent(sub.conflict_reduction_over(base))}")
    print(f"Execution-time improvement:                "
          f"{percent(sub.speedup_over(base))}")


if __name__ == "__main__":
    main()
