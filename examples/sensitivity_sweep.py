#!/usr/bin/env python
"""Sub-block sensitivity sweep (the paper's Figure 8 experiment).

Runs one benchmark under baseline ASF once with conflict-event recording,
then re-evaluates every recorded conflict at 2/4/8/16 sub-blocks
(open-loop, the characterization-study method) AND runs full closed-loop
simulations at each granularity to show the end-to-end effect.

Run:  python examples/sensitivity_sweep.py [benchmark] [txns_per_core]
"""

import sys

from repro import DetectionScheme, default_system, get_workload
from repro.analysis.granularity import reduction_by_granularity
from repro.sim.runner import run_scripts
from repro.util.tables import format_table, percent

GRANULARITIES = (2, 4, 8, 16)


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "genome"
    txns = int(sys.argv[2]) if len(sys.argv) > 2 else 150

    workload = get_workload(name, txns_per_core=txns)
    base_cfg = default_system()
    scripts = workload.build(base_cfg.n_cores, seed=1)

    print(f"[1/2] Baseline ASF run of {name} (recording conflicts)...")
    baseline = run_scripts(
        scripts, base_cfg, 1, workload_name=name,
        check_atomicity=False, record_events=True,
    )
    events = baseline.stats.conflict_events
    print(
        f"      {baseline.stats.conflicts.total} conflicts, "
        f"{baseline.stats.conflicts.total_false} false "
        f"({percent(baseline.stats.conflicts.false_rate)})\n"
    )

    open_loop = reduction_by_granularity(events, GRANULARITIES)

    print("[2/2] Closed-loop runs at each sub-block count...")
    rows = []
    for n in GRANULARITIES:
        cfg = base_cfg.with_scheme(DetectionScheme.SUBBLOCK, n)
        res = run_scripts(scripts, cfg, 1, workload_name=name,
                          check_atomicity=False)
        rows.append((
            f"{n} x {64 // n}B",
            percent(open_loop[n]),
            percent(res.false_reduction_over(baseline)),
            percent(res.conflict_reduction_over(baseline)),
            percent(res.speedup_over(baseline)),
        ))
    print()
    print(format_table(
        ("sub-blocks", "open-loop false red.", "closed-loop false red.",
         "overall conflict red.", "exec improvement"),
        rows,
        title=f"Figure 8 sensitivity for {name}",
    ))
    print(
        "\nOpen-loop = re-evaluating the recorded baseline conflicts at each\n"
        "granularity (monotone by construction, the paper's Figure 8 metric).\n"
        "Closed-loop = independent full simulations (includes timing feedback)."
    )


if __name__ == "__main__":
    main()
