#!/usr/bin/env python
"""Statistical vs structure-accurate workloads: does fidelity matter?

The Table III generators model each benchmark's *sharing statistics*;
``VacationTreeWorkload`` instead derives every address from a real
red-black tree (genuine inserts with rotations, lookups walking the
actual balanced paths).  This script runs both vacation variants through
the same three systems and compares the signatures the paper cares
about.

Observed: the tree variant preserves the qualitative signature (high
false rate, WAR dominance, sub-blocking wins, perfect bound above it)
while adding structure the statistical model cannot express — e.g. the
upper tree levels become genuinely hot lines, and lookups spread 8-byte
field accesses *within* 32-byte nodes, which leaves more intra-sub-block
residual false sharing at N=4 than the record-granular model shows.

Run:  python examples/structure_fidelity.py
"""

from repro import compare_systems
from repro.util.tables import format_table, percent
from repro.workloads.vacation import VacationWorkload
from repro.workloads.vacation_tree import VacationTreeWorkload


def signature(workload, label):
    results = compare_systems(workload, seed=1)
    base = results["asf"]
    sub = results["subblock"]
    perfect = results["perfect"]
    shares = base.stats.conflicts.false_breakdown()
    return (
        label,
        percent(base.false_rate),
        f"{percent(shares['WAR'], 0)}/{percent(shares['RAW'], 0)}",
        percent(sub.false_reduction_over(base)),
        percent(sub.speedup_over(base)),
        percent(perfect.speedup_over(base)),
    )


def main() -> None:
    txns = 150
    rows = [
        signature(VacationWorkload(txns_per_core=txns), "statistical"),
        signature(
            VacationTreeWorkload(txns_per_core=txns), "red-black tree"
        ),
    ]
    print(
        format_table(
            (
                "vacation variant",
                "false rate",
                "WAR/RAW",
                "false red. @N=4",
                "sub-block speedup",
                "perfect speedup",
            ),
            rows,
            title="Statistical vs structure-accurate vacation",
        )
    )
    print(
        "\nBoth reproduce the paper's signature (WAR-dominant, sub-blocking\n"
        "recovers most of the perfect system's win).  The tree variant's\n"
        "lower N=4 reduction is a genuine structural effect: real lookups\n"
        "touch 8-byte fields spread across each 32-byte node, so some\n"
        "false sharing survives inside 16-byte sub-blocks."
    )


if __name__ == "__main__":
    main()
