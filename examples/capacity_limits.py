#!/usr/bin/env python
"""Why the paper excluded yada and hmm: the best-effort capacity boundary.

ASF buffers speculative state in the L1 (plus limited LSQ/LLB overflow);
a transaction whose footprint overflows one cache set can never commit.
The paper: "we excluded … yada and hmm for their extremely large
transactions [that] cannot fit into baseline ASF hardware."

This script runs the yada-like generator on the Table II machine (it
capacity-livelocks and the engine says so), then on a hypothetical
16-way L1 (it commits fine) — the exclusion is a hardware budget, not a
protocol property.

Run:  python examples/capacity_limits.py
"""

from dataclasses import replace

from repro.config import CacheConfig, DetectionScheme, default_system
from repro.errors import SimulationError
from repro.sim.engine import SimulationEngine
from repro.workloads.hmm import HmmWorkload
from repro.workloads.yada import YadaWorkload


def attempt(cfg, label: str, workload_cls=YadaWorkload) -> None:
    w = workload_cls(txns_per_core=2)
    scripts = w.build(cfg.n_cores, seed=1)
    engine = SimulationEngine(cfg, scripts, seed=1, check_atomicity=False)
    print(f"{label}:")
    try:
        stats = engine.run()
        print(
            f"  committed {stats.txn_commits}/{sum(cs.n_txns for cs in scripts)} "
            f"transactions, {stats.aborts_capacity} capacity aborts"
        )
    except SimulationError as exc:
        stats = engine.machine.stats
        print(f"  EXCLUDED: {exc}")
        print(f"  ({stats.aborts_capacity} capacity aborts before giving up)")
    print()


def main() -> None:
    table2 = default_system(DetectionScheme.SUBBLOCK, 4)
    print("=== yada: same-set worklist aliasing ===")
    attempt(table2, "Table II machine (64KB 2-way L1, ASF speculative buffer)")
    print("=== hmm: power-of-two matrix-row strides ===")
    attempt(table2, "Table II machine", HmmWorkload)

    big_l1 = CacheConfig(
        size_bytes=64 * 1024, line_size=64, associativity=16,
        load_to_use_cycles=3,
    )
    attempt(
        replace(table2, l1=big_l1),
        "Hypothetical 16-way L1 (same capacity, more ways)",
    )
    print(
        "Sub-blocking does not change the capacity story: it refines\n"
        "*conflict detection*, while the speculative buffer remains the\n"
        "L1 — best-effort HTM stays best-effort."
    )


if __name__ == "__main__":
    main()
