#!/usr/bin/env python
"""Measure the simulator's own performance and write ``BENCH_perf.json``.

Five measurements, each with its built-in honesty check:

1. **Hot path** — one contended 8-core vacation run through the full
   engine on three stacks: flat-txn kernel + micro-batched loop, the
   PR6 array kernel + stepwise loop, and the reference object model
   (``record_detail`` off).  All three runs' stats summaries are
   asserted identical before any speedup is reported (the kernel
   changes the *representation*, never the simulated machine).
2. **Kernel** — the vacation hot-path replay microbench: the recorded
   single-core vacation access stream driven straight through
   ``machine.access`` on both kernels.  This isolates the per-access
   kernel cost (coherence state, LRU, telemetry dispatch) from machinery
   both kernels share — transaction construction, token allocation,
   redo-log publishing — which Amdahl's law says would otherwise cap any
   representation's apparent gain.  Per-access counters are asserted
   identical across kernels before the ratio is reported.
3. **Parallel orchestration** — ``compare_systems`` over several
   benchmarks at ``jobs=1`` vs ``jobs=4``.  The observed speedup depends
   on the host: on a single-CPU container process-pool fan-out cannot
   beat serial, so the section is *skipped and marked as such* when
   ``cpu_count == 1`` (``cpu_count`` is recorded next to the numbers
   otherwise).
4. **Summary transfer** — the same ``run_many(jobs=4)`` batch shipping
   full collectors vs compact ``RunSummary`` objects across the process
   boundary.  The per-result pickle payloads are measured and every
   summary's counters are asserted bit-identical to its full
   counterpart before the speedup is reported.
5. **Figure pipeline** — a small ``run_suite`` plus
   ``compute_all_figures``, timed separately, so simulation cost and
   analysis cost are visible on their own.

Run:  python examples/bench_perf.py [--quick] [--out BENCH_perf.json]
"""

from __future__ import annotations

import argparse
import json
import os
import pickle
import platform
import sys
import time

from repro.analysis.experiments import run_suite
from repro.analysis.figures import compute_all_figures
from repro.config import DetectionScheme, default_system
from repro.sim.engine import SimulationEngine
from repro.sim.executors import ExecConfig
from repro.sim.parallel import RunSpec, run_many
from repro.sim.runner import compare_systems
from repro.workloads.registry import get_workload
from repro.workloads.vacation import VacationWorkload

PARALLEL_BENCHMARKS = ("vacation", "genome", "kmeans", "intruder")


def _timed(fn):
    t0 = time.perf_counter()
    out = fn()
    return out, time.perf_counter() - t0


def bench_hot_path(txns: int, seed: int = 5, reps: int = 5) -> dict:
    """Flat-txn engine vs the PR6 array baseline vs the object model.

    Three full-engine configurations of the same contended run:

    * ``flat`` + micro-batched engine loop — the current default stack;
    * ``array`` + stepwise (heap-per-op) engine — the prior release's
      fastest stack, kept verbatim as the differential baseline;
    * ``object`` + stepwise engine — the reference object model.

    Each is timed warm, best-of-``reps``; all three summaries are
    asserted identical before any ratio is reported.
    """
    w = VacationWorkload(txns_per_core=txns)
    cfg = default_system(DetectionScheme.SUBBLOCK, 4)
    scripts = w.build(cfg.n_cores, seed)

    def run(kernel: str, micro_batch: bool):
        engine = SimulationEngine(
            cfg.with_kernel(kernel), scripts, seed=seed,
            check_atomicity=False, record_detail=False,
            micro_batch=micro_batch,
        )
        return engine.run()

    def best_of(kernel: str, micro_batch: bool):
        run(kernel, micro_batch)  # warm caches (memos, allocator)
        best, stats = min(
            (_timed(lambda: run(kernel, micro_batch))[::-1] for _ in range(reps)),
            key=lambda r: r[0],
        )
        return stats, best

    flat, flat_s = best_of("flat", True)
    fast, fast_s = best_of("array", False)
    slow, slow_s = best_of("object", False)
    if not (flat.summary() == fast.summary() == slow.summary()):
        raise AssertionError("kernel runs diverged on the hot-path workload")
    accesses = flat.l1_hits + flat.l1_misses
    return {
        "workload": f"vacation x{txns} txns/core, 8 cores, subblock N=4",
        "simulated_accesses": accesses,
        "engine_flat_txn_seconds": round(flat_s, 4),
        "kernel_array_seconds": round(fast_s, 4),
        "kernel_object_seconds": round(slow_s, 4),
        "engine_flat_txn_acc_per_sec": round(accesses / flat_s),
        "kernel_array_accesses_per_sec": round(accesses / fast_s),
        "kernel_object_accesses_per_sec": round(accesses / slow_s),
        "speedup_flat_vs_array": round(fast_s / flat_s, 3),
        "speedup_flat_vs_object": round(slow_s / flat_s, 3),
        # Kept for history continuity: the headline speedup is now the
        # flat-txn stack over the PR6 array baseline.
        "speedup": round(fast_s / flat_s, 3),
        "counters_identical": True,
    }


def bench_kernel(txns: int, seed: int = 7, replays: int = 15) -> dict:
    """The vacation hot-path replay: per-access kernel cost in isolation.

    A single-core vacation script's access stream is recorded once, then
    replayed non-transactionally through ``machine.access`` on each
    kernel (after one warm pass that faults the footprint into the L1).
    Reads dominate the stream and hit in L1 after warm-up, so the number
    measured is the per-access hot path itself — the part the flat-array
    refactor targets — not the shared token/redo plumbing.
    """
    from repro.htm.ops import OpKind
    from repro.kernel import build_machine
    from repro.telemetry.sinks import CounterSink

    w = VacationWorkload(txns_per_core=txns)
    scripts = w.build(1, seed)
    stream = [
        (op.addr, op.size)
        for cs in scripts
        for st in cs.txns
        for op in st.ops
        if op.kind is not OpKind.WORK
    ]

    def replay(kernel: str) -> tuple[float, dict]:
        cfg = default_system(DetectionScheme.SUBBLOCK, 4).with_kernel(kernel)
        machine = build_machine(cfg, stats=CounterSink())
        access = machine.access
        for addr, size in stream:  # warm pass: fault in the footprint
            access(0, addr, size, False, 0)
        t0 = time.perf_counter()
        for rep in range(replays):
            for addr, size in stream:
                access(0, addr, size, False, rep)
        elapsed = time.perf_counter() - t0
        return elapsed, machine.stats.summary()

    # Best-of-three to de-noise single-CPU CI containers.
    obj_s, obj_sum = min(
        (replay("object") for _ in range(3)), key=lambda r: r[0]
    )
    arr_s, arr_sum = min(
        (replay("array") for _ in range(3)), key=lambda r: r[0]
    )
    flat_s, flat_sum = min(
        (replay("flat") for _ in range(3)), key=lambda r: r[0]
    )
    if not (obj_sum == arr_sum == flat_sum):
        raise AssertionError("kernel replay counters diverged")
    accesses = len(stream) * replays
    return {
        "workload": f"vacation x{txns} txns/core stream, single core, "
        f"{replays} replays (reads, L1-hot)",
        "stream_ops": len(stream),
        "replayed_accesses": accesses,
        "kernel_object_seconds": round(obj_s, 4),
        "kernel_array_seconds": round(arr_s, 4),
        "kernel_flat_seconds": round(flat_s, 4),
        "kernel_object_accesses_per_sec": round(accesses / obj_s),
        "kernel_array_accesses_per_sec": round(accesses / arr_s),
        "kernel_flat_accesses_per_sec": round(accesses / flat_s),
        "speedup": round(obj_s / arr_s, 3),
        "counters_identical": True,
    }


def bench_parallel(txns: int, jobs: int = 4, seed: int = 1) -> dict:
    """Serial vs process-pool execution of identical run batches."""
    cpus = os.cpu_count() or 1
    if cpus == 1:
        # Process-pool fan-out cannot beat serial on one CPU; a "0.6x
        # speedup" here would only be container noise masquerading as a
        # regression, so the section is marked skipped instead.
        return {
            "skipped": True,
            "reason": "cpu_count == 1: process-pool fan-out cannot "
                      "outrun serial execution",
            "cpu_count": 1,
        }
    workloads = [get_workload(name, txns) for name in PARALLEL_BENCHMARKS]

    def batch(n_jobs: int):
        return [
            compare_systems(w, seed=seed, check_atomicity=False,
                            record_detail=False, jobs=n_jobs)
            for w in workloads
        ]

    serial, serial_s = _timed(lambda: batch(1))
    parallel, parallel_s = _timed(lambda: batch(jobs))
    identical = all(
        {k: r.stats.summary() for k, r in s.items()}
        == {k: r.stats.summary() for k, r in p.items()}
        for s, p in zip(serial, parallel)
    )
    if not identical:
        raise AssertionError("parallel batch diverged from serial batch")
    return {
        "benchmarks": list(PARALLEL_BENCHMARKS),
        "runs": len(workloads) * 3,
        "jobs": jobs,
        "serial_seconds": round(serial_s, 4),
        "parallel_seconds": round(parallel_s, 4),
        "speedup": round(serial_s / parallel_s, 3),
        "results_identical": True,
    }


def bench_transfer(txns: int, jobs: int = 4, seed: int = 1) -> dict:
    """Full-collector vs RunSummary transfer for one pooled batch."""
    specs = [
        RunSpec(
            workload=name,
            config=default_system(scheme, 4),
            seed=seed,
            txns_per_core=txns,
            label=f"{name}:{scheme.value}",
        )
        for name in PARALLEL_BENCHMARKS
        for scheme in (DetectionScheme.ASF_BASELINE, DetectionScheme.SUBBLOCK,
                       DetectionScheme.PERFECT)
    ]
    full, full_s = _timed(
        lambda: run_many(specs, ExecConfig(jobs=jobs, transfer="full"))
    )
    lean, lean_s = _timed(
        lambda: run_many(specs, ExecConfig(jobs=jobs, transfer="summary"))
    )
    identical = all(
        f.stats.summary() == s.stats.summary() for f, s in zip(full, lean)
    )
    if not identical:
        raise AssertionError("summary transfer diverged from full collectors")
    full_bytes = sum(len(pickle.dumps(r.stats)) for r in full)
    lean_bytes = sum(len(pickle.dumps(r.stats)) for r in lean)
    return {
        "benchmarks": list(PARALLEL_BENCHMARKS),
        "runs": len(specs),
        "jobs": jobs,
        "full_seconds": round(full_s, 4),
        "summary_seconds": round(lean_s, 4),
        "speedup": round(full_s / lean_s, 3),
        "full_payload_bytes": full_bytes,
        "summary_payload_bytes": lean_bytes,
        "payload_ratio": round(full_bytes / lean_bytes, 1),
        "counters_identical": True,
    }


def bench_figures(txns: int, seed: int = 1) -> dict:
    """Simulation vs analysis cost of the figure pipeline."""
    suite, sim_s = _timed(
        lambda: run_suite(txns_per_core=txns, seed=seed,
                          benchmarks=PARALLEL_BENCHMARKS)
    )
    figures, fig_s = _timed(lambda: compute_all_figures(suite))
    return {
        "benchmarks": list(PARALLEL_BENCHMARKS),
        "txns_per_core": txns,
        "simulate_seconds": round(sim_s, 4),
        "compute_figures_seconds": round(fig_s, 4),
        "figures": sorted(figures),
    }


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--quick", action="store_true",
                    help="small workloads (CI smoke); numbers are noisier")
    ap.add_argument("--out", default="BENCH_perf.json")
    args = ap.parse_args(argv)

    hot_txns = 40 if args.quick else 150
    par_txns = 25 if args.quick else 100
    fig_txns = 25 if args.quick else 100

    report = {
        "meta": {
            "python": platform.python_version(),
            "platform": platform.platform(),
            "cpu_count": os.cpu_count(),
            "quick": args.quick,
        },
        "hot_path": bench_hot_path(hot_txns),
        "kernel": bench_kernel(40 if args.quick else 80),
        "parallel": bench_parallel(par_txns),
        "transfer": bench_transfer(par_txns),
        "figure_pipeline": bench_figures(fig_txns),
    }
    with open(args.out, "w") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")

    hp, par = report["hot_path"], report["parallel"]
    ker = report["kernel"]
    print(f"wrote {args.out}")
    print(f"  hot path : {hp['engine_flat_txn_acc_per_sec']:>9,} acc/s flat "
          f"(array {hp['kernel_array_accesses_per_sec']:,}, object "
          f"{hp['kernel_object_accesses_per_sec']:,}; "
          f"{hp['speedup_flat_vs_array']}x vs array, "
          f"{hp['speedup_flat_vs_object']}x vs object, counters identical)")
    print(f"  kernel   : {ker['kernel_flat_accesses_per_sec']:>9,} acc/s "
          f"replay flat (array {ker['kernel_array_accesses_per_sec']:,}, "
          f"object {ker['kernel_object_accesses_per_sec']:,}; "
          f"counters identical)")
    if par.get("skipped"):
        print(f"  parallel : skipped ({par['reason']})")
    else:
        print(f"  parallel : {par['runs']} runs, jobs={par['jobs']}: "
              f"{par['parallel_seconds']}s vs serial {par['serial_seconds']}s "
              f"({par['speedup']}x on {report['meta']['cpu_count']} CPUs)")
    tr = report["transfer"]
    print(f"  transfer : summary {tr['summary_seconds']}s vs full "
          f"{tr['full_seconds']}s ({tr['speedup']}x); payload "
          f"{tr['summary_payload_bytes']:,} B vs "
          f"{tr['full_payload_bytes']:,} B ({tr['payload_ratio']}x smaller, "
          f"counters identical)")
    print(f"  figures  : simulate {report['figure_pipeline']['simulate_seconds']}s, "
          f"analyse {report['figure_pipeline']['compute_figures_seconds']}s")
    return 0


if __name__ == "__main__":
    sys.exit(main())
