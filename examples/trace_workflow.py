#!/usr/bin/env python
"""Trace-driven workflow: pin a program, replay it, inspect one line.

Three steps a user debugging an HTM workload walks through:

1. compile a benchmark and *serialize* the exact per-core program — the
   file pins the experiment independent of generator code drift;
2. replay the serialized program under two detection schemes and diff the
   headline numbers (identical programs, so any delta is the detector);
3. attach an access log and zoom into the hottest conflicting line:
   who touched it, when, with what outcome.

Run:  python examples/trace_workflow.py
"""

import tempfile
from collections import Counter
from pathlib import Path

from repro import DetectionScheme, default_system, get_workload
from repro.sim.runner import run_scripts
from repro.trace import attach_access_log, load_scripts, save_scripts
from repro.util.tables import format_table, percent


def main() -> None:
    # -- 1. pin the program -------------------------------------------------
    workload = get_workload("genome", txns_per_core=60)
    scripts = workload.build(8, seed=5)
    path = Path(tempfile.mkdtemp()) / "genome-seed5.jsonl"
    save_scripts(scripts, path, metadata={"benchmark": "genome", "seed": 5})
    print(f"[1] serialized the compiled program to {path}")
    loaded = load_scripts(path)
    assert loaded == scripts
    print("    reloaded and verified (content digest matches)\n")

    # -- 2. replay under two schemes ---------------------------------------
    rows = []
    results = {}
    for scheme in (DetectionScheme.ASF_BASELINE, DetectionScheme.SUBBLOCK):
        cfg = default_system(scheme, 4)
        res = run_scripts(loaded, cfg, seed=5, workload_name="genome")
        results[scheme] = res
        s = res.stats
        rows.append((res.scheme, s.conflicts.total, s.conflicts.total_false,
                     percent(s.conflicts.false_rate), s.execution_cycles))
    print("[2] identical program, two detectors:")
    print(format_table(
        ("scheme", "conflicts", "false", "false rate", "cycles"), rows))
    base, sub = results[DetectionScheme.ASF_BASELINE], results[DetectionScheme.SUBBLOCK]
    print(f"    improvement: {percent(sub.speedup_over(base))}\n")

    # -- 3. zoom into the hottest line with the access log -------------------
    from repro.sim.engine import SimulationEngine

    cfg = default_system(DetectionScheme.ASF_BASELINE)
    engine = SimulationEngine(cfg, loaded, seed=5, check_atomicity=False)
    log = attach_access_log(engine.machine)
    stats = engine.run()

    hot_line, n_false = stats.false_by_line.most_common(1)[0]
    line_addr = hot_line * 64
    events = log.for_line(line_addr)
    by_core = Counter(e.core for e in events)
    conflicts = [e for e in events if e.n_conflicts]
    print(f"[3] hottest false-conflict line: index {hot_line} "
          f"({n_false} false conflicts, {len(events)} accesses)")
    print(f"    cores touching it: {dict(sorted(by_core.items()))}")
    for e in conflicts[:5]:
        kind = "W" if e.is_write else "R"
        print(f"    @cycle {e.time:>7} core{e.core} {kind} "
              f"+{e.addr % 64:<2} -> aborted {e.n_conflicts} victim(s)")
    print("\nThe serialized program + seed reproduce every one of these "
          "events bit-for-bit.")


if __name__ == "__main__":
    main()
