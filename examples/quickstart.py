#!/usr/bin/env python
"""Quickstart: see a false transactional conflict, then see it eliminated.

Two transactions touch *disjoint* 8-byte fields of the same 64-byte cache
line.  Under baseline ASF (line-granularity SR/SW bits) the writer's
invalidating probe aborts the reader — a false conflict.  Under the
paper's speculative sub-blocking state (N=4, 16-byte sub-blocks) the same
program runs conflict-free.

Run:  python examples/quickstart.py
"""

from repro import DetectionScheme, default_system
from repro.htm.machine import HtmMachine
from repro.htm.txn import TxnStatus

LINE = 0x1000  # one shared cache line
FIELD_A = LINE  # bytes 0..7   (sub-block 0)
FIELD_B = LINE + 32  # bytes 32..39 (sub-block 2)


def run_scenario(scheme: DetectionScheme) -> str:
    machine = HtmMachine(default_system(scheme, n_subblocks=4))

    # Core 0 begins a transaction and reads field A.
    reader = machine.new_txn(core=0, static_id=0, ops=(), attempt=1, time=0)
    machine.begin_txn(0, reader)
    machine.access(core=0, addr=FIELD_A, size=8, is_write=False, time=0)

    # Core 1 begins a transaction and writes field B — same line,
    # completely different bytes.
    writer = machine.new_txn(core=1, static_id=1, ops=(), attempt=1, time=10)
    machine.begin_txn(1, writer)
    outcome = machine.access(core=1, addr=FIELD_B, size=8, is_write=True, time=10)

    if reader.status is TxnStatus.ABORTED:
        rec = outcome.conflicts[0]
        verdict = (
            f"reader ABORTED by a {'FALSE' if rec.is_false else 'TRUE'} "
            f"{rec.ctype.value} conflict"
        )
    else:
        machine.commit(0, time=20)
        verdict = "reader survived and committed"
        machine.commit(1, time=21)
    return verdict


def main() -> None:
    print("Two transactions, disjoint bytes, one cache line:")
    print(f"  core 0 reads  bytes {FIELD_A % 64}..{FIELD_A % 64 + 7}")
    print(f"  core 1 writes bytes {FIELD_B % 64}..{FIELD_B % 64 + 7}")
    print()
    for scheme, label in (
        (DetectionScheme.ASF_BASELINE, "baseline ASF   "),
        (DetectionScheme.SUBBLOCK, "sub-blocking N=4"),
        (DetectionScheme.PERFECT, "perfect (ideal) "),
    ):
        print(f"  {label}: {run_scenario(scheme)}")
    print()
    print(
        "The baseline pays an abort for pure false sharing; the paper's\n"
        "sub-blocking state detects conflicts at 16-byte granularity and\n"
        "lets both transactions commit — matching the ideal system."
    )


if __name__ == "__main__":
    main()
